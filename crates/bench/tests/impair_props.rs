//! Conservation properties of the fault-injection layer, checked over
//! randomized impairment configurations (vendored-proptest, 64 cases per
//! property): no packet may ever be duplicated or silently vanish —
//! every one is delivered exactly once, counted by a drop process, or
//! still sitting in the queue; deliveries never land inside an outage
//! window; jitter/reordering permute timestamps without touching the
//! multiset; and a perturbed delivery never beats the opportunity that
//! carried it. The sweep-level determinism of the same machinery is
//! locked by `impair_identity.rs`.

use proptest::option;
use proptest::prelude::*;
use sprout_sim::{FlowId, LinkConfig, LinkDelivery, LinkImpairment, Packet, TraceLink};
use sprout_trace::{
    Duration, GilbertElliott, JitterSpec, OutageSchedule, OutageSpec, ReorderSpec, Timestamp,
    Trace, MTU_BYTES,
};

/// Packets per property case. Small enough to keep 64 cases fast, large
/// enough for every stochastic process to fire.
const N: u64 = 200;

/// Milliseconds between both packet arrivals and delivery opportunities.
const GAP_MS: u64 = 5;

fn t(ms: u64) -> Timestamp {
    Timestamp::from_millis(ms)
}

fn mtu_pkt(seq: u64) -> Packet {
    Packet::opaque(FlowId::PRIMARY, seq, MTU_BYTES)
}

/// An impaired link over a dense trace: one MTU opportunity every
/// [`GAP_MS`] for `2 * N` slots (double the offered load, so loss-free
/// configurations always drain).
fn impaired_link(impair: LinkImpairment) -> TraceLink {
    let trace = Trace::from_millis((0..2 * N).map(|i| i * GAP_MS));
    TraceLink::new(LinkConfig {
        impair,
        ..LinkConfig::standard(trace)
    })
}

/// Ingress packet `i` at `i * GAP_MS`, polling `service` at every step,
/// then flush far past the trace end so every buffered (jittered/held)
/// delivery has come due. Returns the deliveries in emission order.
fn drive(link: &mut TraceLink) -> Vec<LinkDelivery> {
    let mut out = Vec::new();
    for step in 0..2 * N {
        if step < N {
            link.ingress(mtu_pkt(step), t(step * GAP_MS));
        }
        out.extend(link.service(t(step * GAP_MS)));
    }
    out.extend(link.service(t(10 * N * GAP_MS)));
    out
}

/// Build the outage schedule for a `(duration, extra spacing)` draw over
/// the whole driven horizon. Spacing is `duration + extra`, satisfying
/// the spacing-exceeds-duration invariant by construction.
fn outage_schedule(dur_ms: u64, extra_ms: u64, seed: u64) -> OutageSchedule {
    OutageSchedule::generate(
        &OutageSpec {
            duration: Duration::from_millis(dur_ms),
            spacing: Duration::from_millis(dur_ms + extra_ms),
        },
        seed,
        Duration::from_millis(2 * N * GAP_MS),
    )
}

proptest! {
    /// Under ANY combination of burst loss, outages, jitter, and
    /// reordering, every offered packet is exactly one of: delivered
    /// (once), dropped by a counted loss process, or still queued behind
    /// suppressed opportunities. Nothing is duplicated, nothing vanishes
    /// uncounted, and emission stays in time order.
    #[test]
    fn every_packet_is_delivered_dropped_or_queued_exactly_once(
        seed in 0u64..1_000_000,
        ge in option::of((0.0f64..0.3, 0.05f64..0.9, 0.0f64..1.0)),
        outage in option::of((5u64..80, 20u64..200)),
        jit_ms in 0u64..30,
        ro in option::of((0.0f64..0.5, 1u64..60)),
    ) {
        let outages = outage
            .map(|(dur, extra)| outage_schedule(dur, extra, seed))
            .unwrap_or_default();
        let mut link = impaired_link(LinkImpairment {
            burst_loss: ge.map(|(p_gb, p_bg, loss_bad)| GilbertElliott {
                p_good_to_bad: p_gb,
                p_bad_to_good: p_bg,
                loss_good: 0.0,
                loss_bad,
            }),
            outages,
            jitter: Some(JitterSpec { max: Duration::from_millis(jit_ms) }),
            reorder: ro.map(|(probability, extra)| ReorderSpec {
                probability,
                extra_delay: Duration::from_millis(extra),
            }),
            seed,
        });
        let delivered = drive(&mut link);

        // The flush drained the release buffer completely.
        prop_assert_eq!(link.pending_release_packets(), 0);
        // Conservation: delivered + dropped + still queued == offered.
        let accounted = delivered.len() as u64
            + link.burst_drops()
            + link.random_drops()
            + link.queue_drops()
            + link.queued_packets() as u64;
        prop_assert_eq!(accounted, N);
        // At-most-once delivery: no sequence number appears twice.
        let mut seqs: Vec<u64> = delivered.iter().map(|d| d.packet.seq).collect();
        seqs.sort_unstable();
        let before = seqs.len();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), before);
        // Emission order is non-decreasing in delivery time.
        for w in delivered.windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    /// With only an outage process injected, no delivery timestamp ever
    /// falls inside a dark window, and the suppressed-opportunity counter
    /// equals exactly the number of trace opportunities the schedule
    /// covers — outages suppress capacity, they never drop packets.
    #[test]
    fn outages_suppress_exactly_the_covered_opportunities(
        seed in 0u64..1_000_000,
        dur_ms in 5u64..80,
        extra_ms in 20u64..200,
    ) {
        let outages = outage_schedule(dur_ms, extra_ms, seed);
        let windows = outages.windows().to_vec();
        let covered = (0..2 * N).filter(|i| outages.is_out(t(i * GAP_MS))).count() as u64;
        let mut link = impaired_link(LinkImpairment {
            outages,
            ..LinkImpairment::default()
        });
        let delivered = drive(&mut link);

        for d in &delivered {
            for &(start, end) in &windows {
                prop_assert!(d.at < start || d.at >= end);
            }
        }
        prop_assert_eq!(link.outage_suppressed_opportunities(), covered);
        // No loss process ran: every packet is delivered or still queued.
        prop_assert_eq!(delivered.len() as u64 + link.queued_packets() as u64, N);
    }

    /// Jitter and reordering are pure timestamp perturbations: the
    /// delivered multiset is exactly the offered sequence range, each
    /// packet once, however aggressively deliveries are held and shuffled.
    #[test]
    fn perturbation_preserves_the_packet_multiset(
        seed in 0u64..1_000_000,
        jit_ms in 0u64..30,
        ro_prob in 0.0f64..0.8,
        ro_extra_ms in 1u64..80,
    ) {
        let mut link = impaired_link(LinkImpairment {
            jitter: Some(JitterSpec { max: Duration::from_millis(jit_ms) }),
            reorder: Some(ReorderSpec {
                probability: ro_prob,
                extra_delay: Duration::from_millis(ro_extra_ms),
            }),
            seed,
            ..LinkImpairment::default()
        });
        let delivered = drive(&mut link);

        let mut seqs: Vec<u64> = delivered.iter().map(|d| d.packet.seq).collect();
        seqs.sort_unstable();
        prop_assert_eq!(seqs, (0..N).collect::<Vec<u64>>());
        prop_assert_eq!(link.pending_release_packets(), 0);
    }

    /// A perturbed delivery never beats the opportunity that carried it,
    /// and never trails it by more than the configured jitter-plus-hold
    /// bound. (MTU packets over an MTU-per-opportunity trace map packet
    /// `k` onto opportunity `k`, so the bracket is exact per packet.)
    #[test]
    fn perturbed_deliveries_stay_inside_the_jitter_hold_bracket(
        seed in 0u64..1_000_000,
        jit_ms in 0u64..30,
        ro in option::of((0.0f64..0.5, 1u64..60)),
    ) {
        let ro_extra = ro.map(|(_, e)| e).unwrap_or(0);
        let mut link = impaired_link(LinkImpairment {
            jitter: Some(JitterSpec { max: Duration::from_millis(jit_ms) }),
            reorder: ro.map(|(probability, extra)| ReorderSpec {
                probability,
                extra_delay: Duration::from_millis(extra),
            }),
            seed,
            ..LinkImpairment::default()
        });
        // Offer everything up front: the FIFO then pairs packet k with
        // opportunity k.
        for i in 0..N {
            link.ingress(mtu_pkt(i), t(0));
        }
        let delivered = link.service(t(10 * N * GAP_MS));

        prop_assert_eq!(delivered.len() as u64, N);
        for d in &delivered {
            let opportunity = t(d.packet.seq * GAP_MS);
            prop_assert!(d.at >= opportunity);
            let bound = opportunity
                + Duration::from_millis(jit_ms)
                + Duration::from_millis(ro_extra);
            prop_assert!(d.at <= bound);
        }
    }
}
