//! Scalar-vs-chunked kernel equivalence: the vectorized/blocked hot
//! loops of the evolve walk and the forecast-table DP must be
//! **bit-for-bit** equal to their pre-vectorization scalar references,
//! across random configurations and inputs — not merely close. The
//! restructured loops preserve the floating-point accumulation order
//! (ascending source bins per output cell), which is why the canonical
//! artifacts stay byte-identical and [`sprout_bench::ENGINE_VERSION`]
//! did not bump; `tests/golden_fingerprints.tsv` locks the artifacts
//! themselves.

use proptest::collection;
use proptest::prelude::*;
use sprout_core::{ForecastTables, SproutConfig, TransitionKernel};

/// A validated config with the given geometry; `lookahead_ticks` is
/// pinned to 1 so any `horizon_ticks >= 1` is admissible.
fn cfg_with(
    num_bins: usize,
    sigma: f64,
    max_rate_pps: f64,
    horizon_ticks: usize,
    count_max: usize,
) -> SproutConfig {
    SproutConfig {
        num_bins,
        sigma,
        max_rate_pps,
        horizon_ticks,
        lookahead_ticks: 1,
        count_max,
        ..SproutConfig::default()
    }
}

proptest! {
    #[test]
    fn chunked_evolve_matches_scalar_reference(
        raw in collection::vec(0.0f64..1.0, 8..97),
        sigma in 20.0f64..400.0,
        max_rate_pps in 100.0f64..1000.0,
    ) {
        let num_bins = raw.len();
        let cfg = cfg_with(num_bins, sigma, max_rate_pps, 8, 256);
        let kernel = TransitionKernel::new(&cfg);
        // Force exact zeros into the source distribution: the fast walk
        // skips zero-probability sources, which may only ever elide +0.0
        // contributions.
        let src: Vec<f64> = raw.iter().map(|&p| if p < 0.3 { 0.0 } else { p }).collect();
        let mut fast = vec![0.0f64; num_bins];
        let mut reference = vec![0.0f64; num_bins];
        kernel.evolve_into(&src, &mut fast);
        kernel.evolve_into_reference(&src, &mut reference);
        // Compare bit patterns, not values: -0.0 vs +0.0 or differently
        // rounded sums must fail.
        let fast_bits: Vec<u64> = fast.iter().map(|v| v.to_bits()).collect();
        let reference_bits: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(fast_bits, reference_bits);
    }

    #[test]
    fn blocked_table_dp_matches_scalar_reference(
        bins_sel in 0usize..3,
        cm_sel in 0usize..3,
        horizon_ticks in 2usize..6,
        sigma in 40.0f64..300.0,
        max_rate_pps in 100.0f64..600.0,
    ) {
        // Small geometries keep 64 cases cheap while still exercising
        // partial tail blocks in the chunked DP (sizes straddle the
        // block width on both axes).
        let num_bins = [9, 16, 33][bins_sel];
        let count_max = [32, 65, 96][cm_sel];
        let cfg = cfg_with(num_bins, sigma, max_rate_pps, horizon_ticks, count_max);
        let kernel = TransitionKernel::new(&cfg);
        let fast = ForecastTables::build(&cfg, &kernel);
        let reference = ForecastTables::build_reference(&cfg, &kernel);
        prop_assert_eq!(fast.to_bytes(), reference.to_bytes());
    }
}

#[test]
fn paper_config_tables_match_reference_byte_for_byte() {
    // One full-size data point beyond the randomized small geometries:
    // the paper's frozen configuration, serialized form and all.
    let cfg = SproutConfig::test_small();
    let kernel = TransitionKernel::new(&cfg);
    let fast = ForecastTables::build(&cfg, &kernel);
    let reference = ForecastTables::build_reference(&cfg, &kernel);
    assert_eq!(fast.to_bytes(), reference.to_bytes());
}

#[test]
fn engine_version_unchanged_by_kernel_restructuring() {
    // The chunked kernels preserve accumulation order, so canonical
    // output is unchanged and the kernel restructuring shipped without
    // an engine-version bump (the version sat at 3 before and after).
    // The pin tracks the *current* version — v4 is the fault-injection
    // layer, v5 the multi-session serve workload, v6 measured-trace
    // links + the cell-series attachment, all deliberate identity
    // changes with matching golden churn — so that bumping it without
    // regenerating the golden fingerprints (or vice versa) is still
    // the bug this assertion catches.
    assert_eq!(sprout_bench::ENGINE_VERSION, 6);
    let golden = include_str!("golden_fingerprints.tsv");
    let rows = golden.lines().filter(|l| !l.starts_with('#')).count();
    assert!(
        rows >= 5,
        "golden fingerprint table went missing ({rows} rows)"
    );
}
