//! Benchmark harness for Figure 2 (interarrival distribution of a
//! saturated cellular downlink). `reproduce fig2` generates the figure.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_trace::{Duration, InterarrivalHistogram, NetProfile};

fn bench(c: &mut Criterion) {
    let trace = NetProfile::VerizonLteDown.generate(Duration::from_secs(300), 7);
    c.bench_function("fig2_histogram_300s", |b| {
        b.iter(|| InterarrivalHistogram::from_trace(std::hint::black_box(&trace), 10, 10_000.0))
    });
    c.bench_function("fig2_trace_synthesis_60s", |b| {
        b.iter(|| NetProfile::VerizonLteDown.generate(Duration::from_secs(60), 7))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
