//! Benchmark harness for Figure 7: one representative cell (Sprout on the
//! Verizon LTE downlink) at reduced duration. `reproduce fig7` runs the
//! full 10-scheme × 8-link sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_bench::figures::ExperimentConfig;
use sprout_bench::{run_scheme, Scheme};
use sprout_trace::Duration;

fn bench(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let mut rc = exp.run_config(sprout_trace::NetProfile::VerizonLteDown);
    rc.duration = Duration::from_secs(40);
    rc.warmup = Duration::from_secs(10);
    // Pay the forecast-table build once, outside the measurement.
    let _ = sprout_core::ForecastTables::get(&rc.sprout);
    c.bench_function("fig7_cell_sprout_vz_lte_down_40s", |b| {
        b.iter(|| run_scheme(Scheme::Sprout, std::hint::black_box(&rc)))
    });
    c.bench_function("fig7_cell_cubic_vz_lte_down_40s", |b| {
        b.iter(|| run_scheme(Scheme::Cubic, std::hint::black_box(&rc)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
