//! Microbenchmarks of Sprout's inference engine — the §3 claim that
//! per-tick CPU cost is negligible ("less than 5% of a current
//! microprocessor"): one tick of evolve+observe+normalize plus one
//! forecast must complete far faster than the 20 ms tick budget.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_core::{ForecastTables, RateModel, SproutConfig, TransitionKernel};

fn bench_model_tick(c: &mut Criterion) {
    let cfg = SproutConfig::paper();
    let mut model = RateModel::new(cfg);
    c.bench_function("model_tick_evolve_observe", |b| {
        b.iter(|| {
            model.evolve();
            model.observe(std::hint::black_box(7.0));
        })
    });
}

fn bench_forecast(c: &mut Criterion) {
    let cfg = SproutConfig::paper();
    let tables = ForecastTables::get(&cfg);
    let mut model = RateModel::new(cfg.clone());
    for _ in 0..50 {
        model.evolve();
        model.observe(8.0);
    }
    c.bench_function("forecast_95pct_8ticks", |b| {
        b.iter(|| tables.forecast(std::hint::black_box(model.distribution()), 5.0))
    });
}

fn bench_table_build_small(c: &mut Criterion) {
    // Paper-scale table build is a one-time cost (seconds); benchmark the
    // scaled-down build to track regressions cheaply.
    let cfg = SproutConfig::test_small();
    let kernel = TransitionKernel::new(&cfg);
    c.bench_function("forecast_table_build_small", |b| {
        b.iter(|| ForecastTables::build(std::hint::black_box(&cfg), &kernel))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_model_tick, bench_forecast, bench_table_build_small
}
criterion_main!(benches);
