//! Microbenchmarks of Sprout's inference engine — the §3 claim that
//! per-tick CPU cost is negligible ("less than 5% of a current
//! microprocessor"): one tick of evolve+observe+normalize plus one
//! forecast must complete far faster than the 20 ms tick budget.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_core::{ForecastScratch, ForecastTables, RateModel, SproutConfig, TransitionKernel};

fn converged_model(cfg: &SproutConfig) -> RateModel {
    let mut model = RateModel::new(cfg.clone());
    for _ in 0..50 {
        model.evolve();
        model.observe(8.0);
    }
    model
}

fn bench_model_tick(c: &mut Criterion) {
    let cfg = SproutConfig::paper();
    let mut model = RateModel::new(cfg);
    c.bench_function("model_tick_evolve_observe", |b| {
        b.iter(|| {
            model.evolve();
            model.observe(std::hint::black_box(7.0));
        })
    });
}

fn bench_evolve_only(c: &mut Criterion) {
    // The CSR scatter walk in isolation (the transition half of a tick).
    let mut model = RateModel::new(SproutConfig::paper());
    c.bench_function("model_evolve_only", |b| b.iter(|| model.evolve()));
}

fn bench_observe_only(c: &mut Criterion) {
    // The Poisson-likelihood update in isolation.
    let mut model = converged_model(&SproutConfig::paper());
    c.bench_function("model_observe_only", |b| {
        b.iter(|| model.observe(std::hint::black_box(8.0)))
    });
}

fn bench_forecast(c: &mut Criterion) {
    let cfg = SproutConfig::paper();
    let tables = ForecastTables::get(&cfg);
    let model = converged_model(&cfg);
    // The allocating convenience API (kept for comparability with the
    // pre-optimization baseline)...
    c.bench_function("forecast_95pct_8ticks", |b| {
        b.iter(|| tables.forecast(std::hint::black_box(model.distribution()), 5.0))
    });
    // ...and the scratch-reusing hot path the endpoint actually runs.
    let mut scratch = ForecastScratch::default();
    c.bench_function("forecast_into_95pct_8ticks", |b| {
        b.iter(|| {
            tables
                .forecast_into(
                    std::hint::black_box(model.distribution()),
                    5.0,
                    &mut scratch,
                )
                .cumulative_units
                .len()
        })
    });
}

fn bench_table_build_small(c: &mut Criterion) {
    // Paper-scale table build is a one-time cost (seconds); benchmark the
    // scaled-down build to track regressions cheaply.
    let cfg = SproutConfig::test_small();
    let kernel = TransitionKernel::new(&cfg);
    c.bench_function("forecast_table_build_small", |b| {
        b.iter(|| ForecastTables::build(std::hint::black_box(&cfg), &kernel))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_model_tick, bench_evolve_only, bench_observe_only, bench_forecast,
        bench_table_build_small
}
criterion_main!(benches);
