//! Benchmark harness for the §5.7 tunnel experiment at reduced duration.
//! `reproduce tunnel` runs the full comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_bench::figures::{tunnel_comparison, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick();
    cfg.run_secs = 40;
    cfg.warmup_secs = 10;
    cfg.out_dir = std::env::temp_dir().join("sprout-bench-tunnel");
    let _ = sprout_core::ForecastTables::get(&sprout_core::SproutConfig::paper());
    c.bench_function("tunnel_comparison_40s", |b| {
        b.iter(|| tunnel_comparison(std::hint::black_box(&cfg)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
