//! Ablations of the reproduction's load-bearing design choices:
//! time-to-next gating on/off, EWMA gain, and forecast confidence — each
//! run end to end on the same link so the benchmark reports both runtime
//! and (via eprintln) the achieved throughput/delay trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_bench::figures::ExperimentConfig;
use sprout_bench::{run_scheme, Scheme};
use sprout_core::SproutConfig;
use sprout_trace::Duration;

fn ablation_run(rc: &sprout_bench::RunConfig, label: &str) {
    let r = run_scheme(Scheme::Sprout, rc);
    eprintln!(
        "[ablation {label}] {:.0} kbps, self-inflicted {:.0} ms",
        r.throughput_kbps, r.self_inflicted_ms
    );
}

fn bench(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let mut rc = exp.run_config(sprout_trace::NetProfile::VerizonLteDown);
    rc.duration = Duration::from_secs(40);
    rc.warmup = Duration::from_secs(10);
    let _ = sprout_core::ForecastTables::get(&rc.sprout);

    // Report the ablation outcomes once, outside the timing loops.
    ablation_run(&rc, "ttn-gating on (paper)");
    let mut no_gating = rc.clone();
    no_gating.sprout = SproutConfig {
        ttn_gating: false,
        ..SproutConfig::paper()
    };
    ablation_run(&no_gating, "ttn-gating off");

    c.bench_function("ablation_sprout_gating_on_40s", |b| {
        b.iter(|| run_scheme(Scheme::Sprout, std::hint::black_box(&rc)))
    });
    c.bench_function("ablation_sprout_gating_off_40s", |b| {
        b.iter(|| run_scheme(Scheme::Sprout, std::hint::black_box(&no_gating)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
