//! Benchmark harness for Figure 9 (confidence sweep): one sweep point at
//! reduced duration. `reproduce fig9` runs the full sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_bench::figures::ExperimentConfig;
use sprout_bench::{run_scheme, Scheme};
use sprout_core::SproutConfig;
use sprout_trace::Duration;

fn bench(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let mut rc = exp.run_config(sprout_trace::NetProfile::TmobileUmtsUp);
    rc.duration = Duration::from_secs(40);
    rc.warmup = Duration::from_secs(10);
    rc.sprout = SproutConfig::with_confidence_percent(50.0);
    let _ = sprout_core::ForecastTables::get(&rc.sprout);
    c.bench_function("fig9_point_conf50_tmobile_up_40s", |b| {
        b.iter(|| run_scheme(Scheme::Sprout, std::hint::black_box(&rc)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
