//! Benchmark harness for the §5.6 loss table: Sprout under 10% Bernoulli
//! loss at reduced duration. `reproduce loss` runs the full table.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_bench::figures::ExperimentConfig;
use sprout_bench::{run_scheme, Scheme};
use sprout_trace::Duration;

fn bench(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let mut rc = exp.run_config(sprout_trace::NetProfile::VerizonLteDown);
    rc.duration = Duration::from_secs(40);
    rc.warmup = Duration::from_secs(10);
    rc.loss_rate = 0.10;
    let _ = sprout_core::ForecastTables::get(&rc.sprout);
    c.bench_function("loss_cell_sprout_10pct_40s", |b| {
        b.iter(|| run_scheme(Scheme::Sprout, std::hint::black_box(&rc)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
