//! Benchmark harness for Figure 8 (utilization/delay averages): times the
//! CoDel-path run that distinguishes Fig. 8 from Fig. 7. `reproduce fig8`
//! generates the full figure.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_bench::figures::ExperimentConfig;
use sprout_bench::{run_scheme, Scheme};
use sprout_trace::Duration;

fn bench(c: &mut Criterion) {
    let exp = ExperimentConfig::quick();
    let mut rc = exp.run_config(sprout_trace::NetProfile::VerizonLteDown);
    rc.duration = Duration::from_secs(40);
    rc.warmup = Duration::from_secs(10);
    c.bench_function("fig8_cell_cubic_codel_40s", |b| {
        b.iter(|| run_scheme(Scheme::CubicCodel, std::hint::black_box(&rc)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
