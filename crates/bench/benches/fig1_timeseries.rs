//! Benchmark harness for Figure 1 (Skype vs Sprout time series): runs a
//! scaled-down version of the experiment end to end. `reproduce fig1`
//! generates the full figure.

use criterion::{criterion_group, criterion_main, Criterion};
use sprout_bench::figures::{fig1, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::quick();
    cfg.run_secs = 40;
    cfg.warmup_secs = 10;
    cfg.out_dir = std::env::temp_dir().join("sprout-bench-fig1");
    c.bench_function("fig1_timeseries_40s", |b| {
        b.iter(|| fig1(std::hint::black_box(&cfg)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
