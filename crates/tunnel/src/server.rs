//! The multi-session Sprout server: N independent sessions behind one
//! [`Endpoint`].
//!
//! [`TunnelHost`](crate::TunnelHost) composes one Sprout session with its
//! clients; `MuxEndpoint` composes N arbitrary endpoints but polls every
//! child on every event. [`SproutServer`] generalizes both for the
//! serve-at-scale case: it owns a [`SessionPool`] (thin per-session state
//! over one shared forecast-table build), demuxes arriving wire packets
//! to their session by [`FlowId`](sprout_sim::FlowId) = session id, and drives polling off a
//! [`TimerWheel`] so an event only touches the sessions that are
//! actually due (tick deadline reached) or dirty (received a packet) —
//! the per-event cost is O(due + dirty), not O(N).

use sprout_core::{SessionPool, SproutConfig};
use sprout_sim::{Endpoint, Packet, TimerWheel};
use sprout_trace::Timestamp;

/// One process's worth of independent Sprout sessions behind a single
/// [`Endpoint`]: the pool holds per-session state, the wheel schedules
/// per-session ticks, and packets route by session id in both
/// directions. Session endpoints stamp their own [`FlowId`](sprout_sim::FlowId), so no
/// re-stamping pass is needed on the way out.
pub struct SproutServer {
    pool: SessionPool,
    wheel: TimerWheel,
    /// Sessions that received a packet since their last poll, by dense
    /// index; drained in ascending order for determinism.
    dirty: Vec<bool>,
    any_dirty: bool,
    /// Cached earliest tick deadline across all sessions. The wheel only
    /// changes inside `add_session` and `poll_into` (both `&mut self`),
    /// so recomputing it there keeps `next_wakeup` O(1) under the
    /// `&self` [`Endpoint`] contract.
    next_deadline: Option<Timestamp>,
}

impl SproutServer {
    /// Empty server over one link group (`cfg`) for one cell
    /// (`cell_seed`).
    pub fn new(cfg: SproutConfig, cell_seed: u64) -> Self {
        SproutServer {
            pool: SessionPool::new(cfg, cell_seed),
            wheel: TimerWheel::new(),
            dirty: Vec::new(),
            any_dirty: false,
            next_deadline: None,
        }
    }

    /// Add (and arm) the server half of session `session_id`; returns
    /// the dense index. Saturating workloads are driven by the *clients*;
    /// the server half sends only feedback and heartbeats.
    pub fn add_session(&mut self, session_id: u32) -> usize {
        let idx = self.pool.add_session(session_id);
        self.dirty.push(false);
        let wakeup = self.pool.endpoint_mut(idx).next_wakeup();
        self.wheel.schedule(idx, wakeup);
        self.next_deadline = self.wheel.next_deadline();
        idx
    }

    /// The session pool (per-session stats, shared-table handle).
    pub fn pool(&self) -> &SessionPool {
        &self.pool
    }

    /// Number of sessions served.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// True when no sessions are attached.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    fn poll_session(&mut self, idx: usize, now: Timestamp, out: &mut Vec<Packet>) {
        self.dirty[idx] = false;
        let endpoint = self.pool.endpoint_mut(idx);
        endpoint.poll_into(now, out);
        let wakeup = endpoint.next_wakeup();
        self.wheel.schedule(idx, wakeup);
    }
}

impl Endpoint for SproutServer {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        if let Some(idx) = self.pool.index_of(packet.flow.0) {
            self.pool.endpoint_mut(idx).on_packet(packet, now);
            self.dirty[idx] = true;
            self.any_dirty = true;
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        // Sessions whose tick deadline arrived, in deadline order.
        while let Some(idx) = self.wheel.pop_due(now) {
            self.poll_session(idx, now, out);
        }
        // Sessions that received packets since their last poll (their
        // window or feedback state may allow immediate transmission).
        if self.any_dirty {
            self.any_dirty = false;
            for idx in 0..self.dirty.len() {
                if self.dirty[idx] {
                    self.poll_session(idx, now, out);
                }
            }
        }
        self.next_deadline = self.wheel.next_deadline();
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        // Dirty sessions need no deadline of their own: the driver polls
        // after every delivery anyway.
        self.next_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_core::SproutEndpoint;
    use sprout_sim::FlowId;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn server_demuxes_by_session_id() {
        let cfg = sprout_core::SproutConfig::test_small();
        let mut server = SproutServer::new(cfg.clone(), 99);
        server.add_session(1);
        server.add_session(2);
        // A valid Sprout packet addressed to session 2 only bumps
        // session 2's counters.
        let mut client = SproutEndpoint::new_ewma(cfg);
        client.set_flow(FlowId(2));
        let pkts = client.poll(t(0));
        assert!(!pkts.is_empty());
        for p in pkts {
            server.on_packet(p, t(0));
        }
        assert_eq!(server.pool().stats(0).packets_received, 0);
        assert_eq!(server.pool().stats(1).packets_received, 1);
    }

    #[test]
    fn server_polls_only_due_sessions_but_covers_all_ticks() {
        let cfg = sprout_core::SproutConfig::test_small();
        let mut server = SproutServer::new(cfg, 7);
        for sid in 0..4 {
            server.add_session(sid);
        }
        // All sessions tick on the same grid; at the first tick boundary
        // every session emits its heartbeat exactly once.
        let first = server.next_wakeup().expect("sessions are armed");
        let out = server.poll(first);
        assert_eq!(out.len(), 4, "one heartbeat per session");
        // Immediately afterwards nothing is due: the wheel re-armed
        // every session for the *next* tick.
        assert!(server.poll(first).is_empty());
        assert!(server.next_wakeup() > Some(first));
    }
}
