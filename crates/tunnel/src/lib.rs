//! SproutTunnel (§4.3): carry arbitrary client traffic across the
//! cellular link inside a Sprout session, isolating flows from each other.
//!
//! "SproutTunnel provides each flow with the abstraction of a low-delay
//! connection, without modifying carrier equipment. It does this by
//! separating each flow into its own queue, and filling up the Sprout
//! window in round-robin fashion among the flows that have pending data.
//! The total queue length of all flows is limited to the receiver's most
//! recent estimate of the number of packets that can be delivered over
//! the life of the forecast. When the queue lengths exceed this value,
//! the tunnel endpoints drop packets from the head of the longest queue."
//!
//! [`TunnelEndpoint`] is the tunnel itself (local packets in/out, Sprout
//! wire packets toward the network); [`TunnelHost`] composes a tunnel
//! with the local client endpoints into a single [`Endpoint`] suitable
//! for [`sprout_sim::Simulation`].

#![warn(missing_docs)]

pub mod server;

pub use server::SproutServer;

use std::collections::VecDeque;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sprout_core::SproutEndpoint;
use sprout_sim::{Endpoint, FlowId, Packet};
use sprout_trace::Timestamp;

/// Encapsulation header inside a Sprout datagram: flow(4) seq(8)
/// sent_at(8) size(4).
const ENCAP_LEN: usize = 24;

fn encapsulate(packet: &Packet) -> Bytes {
    let mut b = BytesMut::with_capacity(ENCAP_LEN + packet.payload.len());
    b.put_u32_le(packet.flow.0);
    b.put_u64_le(packet.seq);
    b.put_u64_le(packet.sent_at.as_micros());
    b.put_u32_le(packet.size);
    b.extend_from_slice(&packet.payload);
    b.freeze()
}

fn decapsulate(mut datagram: Bytes) -> Option<Packet> {
    if datagram.len() < ENCAP_LEN {
        return None;
    }
    let flow = FlowId(datagram.get_u32_le());
    let seq = datagram.get_u64_le();
    let sent_at = Timestamp::from_micros(datagram.get_u64_le());
    let size = datagram.get_u32_le();
    Some(Packet {
        flow,
        seq,
        sent_at,
        size,
        payload: datagram,
    })
}

/// Counters for tests and reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct TunnelStats {
    /// Client packets accepted into per-flow queues.
    pub enqueued: u64,
    /// Client packets dropped by the head-drop AQM.
    pub dropped: u64,
    /// Client packets handed to Sprout for transmission.
    pub forwarded: u64,
    /// Client packets decapsulated for local delivery.
    pub delivered: u64,
}

/// One end of a SproutTunnel.
pub struct TunnelEndpoint {
    sprout: SproutEndpoint,
    /// Per-flow client queues, in insertion order of first use.
    queues: Vec<(FlowId, VecDeque<Packet>)>,
    /// Round-robin position.
    rr_next: usize,
    stats: TunnelStats,
}

impl TunnelEndpoint {
    /// Wrap a Sprout endpoint (typically `SproutEndpoint::new(cfg)`).
    pub fn new(sprout: SproutEndpoint) -> Self {
        TunnelEndpoint {
            sprout,
            queues: Vec::new(),
            rr_next: 0,
            stats: TunnelStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> TunnelStats {
        self.stats
    }

    /// The underlying Sprout endpoint (diagnostics).
    pub fn sprout(&self) -> &SproutEndpoint {
        &self.sprout
    }

    /// A client (local-side) packet enters the tunnel.
    pub fn inject_local(&mut self, packet: Packet, _now: Timestamp) {
        // Resolve the flow's queue by position: if absent, push a fresh
        // queue first so the index is valid by construction — no `last_mut
        // + unwrap` whose invariant lives three lines away.
        let idx = match self.queues.iter().position(|(f, _)| *f == packet.flow) {
            Some(idx) => idx,
            None => {
                self.queues.push((packet.flow, VecDeque::new()));
                self.queues.len() - 1
            }
        };
        self.queues[idx].1.push_back(packet);
        self.stats.enqueued += 1;
    }

    /// Total queued client bytes across flows.
    pub fn queued_bytes(&self) -> u64 {
        self.queues
            .iter()
            .flat_map(|(_, q)| q.iter())
            .map(|p| p.size as u64)
            .sum()
    }

    /// Queued bytes of one flow (diagnostics/tests).
    pub fn flow_queue_len(&self, flow: FlowId) -> usize {
        self.queues
            .iter()
            .find(|(f, _)| *f == flow)
            .map(|(_, q)| q.len())
            .unwrap_or(0)
    }

    /// §4.3 queue management: cap the total backlog at the bytes the
    /// forecast says can be delivered over its remaining life, dropping
    /// from the *head* of the *longest* queue while over.
    fn enforce_cap(&mut self, now: Timestamp) {
        let cap = self.sprout.forecast_life_bytes(now);
        if cap == 0 {
            // No forecast yet (first RTT): keep the backlog rather than
            // dropping everything at startup.
            return;
        }
        while self.queued_bytes() > cap {
            let longest = self
                .queues
                .iter_mut()
                .max_by_key(|(_, q)| q.iter().map(|p| p.size as u64).sum::<u64>());
            match longest {
                Some((_, q)) if !q.is_empty() => {
                    q.pop_front();
                    self.stats.dropped += 1;
                }
                _ => break,
            }
        }
    }

    /// Move queued client packets into the Sprout send buffer,
    /// round-robin among flows with pending data, as long as the Sprout
    /// window has room.
    fn fill_window(&mut self, now: Timestamp) {
        let mut window = self.sprout.window_bytes(now);
        loop {
            let n = self.queues.len();
            if n == 0 {
                return;
            }
            let mut advanced = false;
            for step in 0..n {
                let idx = (self.rr_next + step) % n;
                let (_, q) = &mut self.queues[idx];
                let Some(front_size) = q.front().map(|p| p.size as u64) else {
                    continue;
                };
                // Overhead: Sprout full header + encapsulation header.
                let wire = front_size + (sprout_core::wire::FULL_HEADER_LEN + ENCAP_LEN) as u64;
                if window < wire {
                    return;
                }
                window -= wire;
                let packet = q.pop_front().unwrap();
                self.sprout.push_app_datagram(encapsulate(&packet));
                self.stats.forwarded += 1;
                self.rr_next = (idx + 1) % n;
                advanced = true;
                break;
            }
            if !advanced {
                return;
            }
        }
    }

    /// A Sprout wire packet arrives from the network; *appends* the
    /// decapsulated client packets to deliver locally onto `out` (the
    /// caller's recycled buffer — never cleared here), mirroring the
    /// [`Endpoint::poll_into`] contract so the per-packet hot path stays
    /// allocation-free.
    pub fn on_wire_packet_into(&mut self, packet: Packet, now: Timestamp, out: &mut Vec<Packet>) {
        self.sprout.on_packet(packet, now);
        for dgram in self.sprout.take_app_datagrams() {
            if let Some(p) = decapsulate(dgram) {
                self.stats.delivered += 1;
                out.push(p);
            }
        }
    }

    /// Allocating convenience form of
    /// [`TunnelEndpoint::on_wire_packet_into`] (tests, drivers outside
    /// the hot loop).
    pub fn on_wire_packet(&mut self, packet: Packet, now: Timestamp) -> Vec<Packet> {
        let mut out = Vec::new();
        self.on_wire_packet_into(packet, now, &mut out);
        out
    }

    /// Produce Sprout wire packets to transmit toward the network,
    /// appending to `out` (the event loop's recycled buffer).
    pub fn poll_wire_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        self.enforce_cap(now);
        self.fill_window(now);
        self.sprout.poll_into(now, out);
    }

    /// Allocating convenience form of
    /// [`TunnelEndpoint::poll_wire_into`].
    pub fn poll_wire(&mut self, now: Timestamp) -> Vec<Packet> {
        let mut out = Vec::new();
        self.poll_wire_into(now, &mut out);
        out
    }

    /// Next wakeup of the underlying Sprout machinery.
    pub fn next_wakeup(&self) -> Option<Timestamp> {
        self.sprout.next_wakeup()
    }
}

/// A tunnel endpoint composed with its local client endpoints, presenting
/// one [`Endpoint`] to the emulator. The "wired" segment between tunnel
/// and clients is modeled as zero-delay (the paper's relay is
/// well-connected; the cellular hop dominates end-to-end behaviour).
pub struct TunnelHost {
    tunnel: TunnelEndpoint,
    clients: Vec<(FlowId, Box<dyn Endpoint>)>,
    /// End-to-end delivery log of decapsulated client packets (client
    /// `sent_at` → local delivery time), for per-flow §5.7 metrics.
    deliveries: sprout_sim::MetricsCollector,
    /// Recycled buffer for client polls (client packets are re-stamped
    /// and injected locally, so they cannot share the wire buffer).
    client_scratch: Vec<Packet>,
    /// Recycled buffer for decapsulated deliveries on the receive path.
    deliver_scratch: Vec<Packet>,
}

impl TunnelHost {
    /// Compose a tunnel with client endpoints.
    pub fn new(tunnel: TunnelEndpoint) -> Self {
        TunnelHost {
            tunnel,
            clients: Vec::new(),
            deliveries: sprout_sim::MetricsCollector::new(),
            client_scratch: Vec::new(),
            deliver_scratch: Vec::new(),
        }
    }

    /// End-to-end client-packet delivery log (per-flow throughput and
    /// delay for the §5.7 experiment).
    pub fn deliveries(&self) -> &sprout_sim::MetricsCollector {
        &self.deliveries
    }

    /// Attach a client endpoint under `flow`.
    pub fn add_client(&mut self, flow: FlowId, client: Box<dyn Endpoint>) {
        self.clients.push((flow, client));
    }

    /// Tunnel counters.
    pub fn stats(&self) -> TunnelStats {
        self.tunnel.stats()
    }

    /// The tunnel (diagnostics).
    pub fn tunnel(&self) -> &TunnelEndpoint {
        &self.tunnel
    }
}

impl Endpoint for TunnelHost {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        self.tunnel
            .on_wire_packet_into(packet, now, &mut self.deliver_scratch);
        for client_packet in self.deliver_scratch.drain(..) {
            self.deliveries.record(sprout_sim::DeliveryRecord {
                sent_at: client_packet.sent_at,
                delivered_at: now,
                size: client_packet.size,
                flow: client_packet.flow,
            });
            if let Some((_, client)) = self
                .clients
                .iter_mut()
                .find(|(f, _)| *f == client_packet.flow)
            {
                client.on_packet(client_packet, now);
            }
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        for (flow, client) in &mut self.clients {
            client.poll_into(now, &mut self.client_scratch);
            for mut p in self.client_scratch.drain(..) {
                p.flow = *flow;
                p.sent_at = now; // end-to-end timing starts at the client
                self.tunnel.inject_local(p, now);
            }
        }
        self.tunnel.poll_wire_into(now, out)
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        let client_min = self
            .clients
            .iter()
            .filter_map(|(_, c)| c.next_wakeup())
            .min();
        match (client_min, self.tunnel.next_wakeup()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_core::SproutConfig;
    use sprout_sim::{PathConfig, Simulation};
    use sprout_trace::{Duration, Trace};

    fn client_packet(flow: u32, seq: u64, size: u32) -> Packet {
        Packet::opaque(FlowId(flow), seq, size)
    }

    #[test]
    fn encapsulation_round_trips() {
        let mut p = client_packet(7, 42, 900);
        p.sent_at = Timestamp::from_millis(123);
        let d = encapsulate(&p);
        let back = decapsulate(d).unwrap();
        assert_eq!(back.flow, FlowId(7));
        assert_eq!(back.seq, 42);
        assert_eq!(back.size, 900);
        assert_eq!(back.sent_at, Timestamp::from_millis(123));
    }

    #[test]
    fn decapsulate_rejects_short_datagrams() {
        assert!(decapsulate(Bytes::from_static(b"tiny")).is_none());
    }

    #[test]
    fn inject_into_empty_queue_list_creates_the_flow() {
        // The first packet of the first flow ever seen: the queue list is
        // empty and the endpoint must mint the queue rather than panic.
        let mut t = TunnelEndpoint::new(SproutEndpoint::new_ewma(SproutConfig::test_small()));
        assert!(t.queues.is_empty());
        t.inject_local(client_packet(9, 0, 128), Timestamp::ZERO);
        assert_eq!(t.stats().enqueued, 1);
        assert_eq!(t.flow_queue_len(FlowId(9)), 1);
        // A second packet of the same flow reuses the queue; a new flow
        // appends its own.
        t.inject_local(client_packet(9, 1, 128), Timestamp::ZERO);
        t.inject_local(client_packet(10, 0, 128), Timestamp::ZERO);
        assert_eq!(t.flow_queue_len(FlowId(9)), 2);
        assert_eq!(t.flow_queue_len(FlowId(10)), 1);
        assert_eq!(t.queues.len(), 2);
    }

    #[test]
    fn per_flow_queues_fill_round_robin() {
        let mut t = TunnelEndpoint::new(SproutEndpoint::new_ewma(SproutConfig::test_small()));
        for seq in 0..3 {
            t.inject_local(client_packet(1, seq, 200), Timestamp::ZERO);
            t.inject_local(client_packet(2, seq, 200), Timestamp::ZERO);
        }
        assert_eq!(t.stats().enqueued, 6);
        let _wire = t.poll_wire(Timestamp::ZERO);
        // With the EWMA's startup window at least two packets fit, and
        // round-robin must take them from both flows before repeating one.
        assert!(
            t.stats().forwarded >= 2,
            "forwarded {}",
            t.stats().forwarded
        );
        let f1 = t.flow_queue_len(FlowId(1));
        let f2 = t.flow_queue_len(FlowId(2));
        assert!(
            (f1 as i64 - f2 as i64).abs() <= 1,
            "round robin balances: {f1} vs {f2}"
        );
    }

    #[test]
    fn tunnel_carries_packets_end_to_end() {
        // Tunnel A (with a pulsing client) ↔ steady link ↔ tunnel B.
        let cfg = SproutConfig::test_small();
        struct Pulser {
            next: Timestamp,
            seq: u64,
        }
        impl Endpoint for Pulser {
            fn on_packet(&mut self, _p: Packet, _n: Timestamp) {}
            fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
                while self.next <= now {
                    out.push(Packet::opaque(FlowId(3), self.seq, 400));
                    self.seq += 1;
                    self.next += Duration::from_millis(50);
                }
            }
            fn next_wakeup(&self) -> Option<Timestamp> {
                Some(self.next)
            }
        }
        let mut host_a =
            TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new_ewma(cfg.clone())));
        host_a.add_client(
            FlowId(3),
            Box::new(Pulser {
                next: Timestamp::ZERO,
                seq: 0,
            }),
        );
        let host_b = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new_ewma(cfg)));
        let fast = || Trace::from_millis((0..4_000).map(|i| i * 5));
        let mut sim = Simulation::new(
            host_a,
            host_b,
            PathConfig::standard(fast()),
            PathConfig::standard(fast()),
        );
        sim.run_until(Timestamp::from_secs(20));
        let delivered = sim.b.stats().delivered;
        assert!(
            delivered > 300,
            "client packets must traverse the tunnel: {delivered}"
        );
        assert_eq!(sim.b.stats().dropped, 0, "uncongested: no drops");
    }

    #[test]
    fn cap_drops_from_head_of_longest_queue() {
        let mut t = TunnelEndpoint::new(SproutEndpoint::new_ewma(SproutConfig::test_small()));
        // Hand-feed feedback predicting 1 packet/tick so the §4.3 cap is
        // active and small (8 ticks × 1500 B = 12 kB).
        use sprout_core::{SproutHeader, WireForecast};
        let fb = WireForecast {
            recv_or_lost_bytes: 0,
            tick: 1,
            cumulative_units: [4, 8, 12, 16, 20, 24, 28, 32],
        };
        let payload = SproutHeader {
            seq: 0,
            throwaway: 0,
            time_to_next: Duration::ZERO,
            sent_at: Timestamp::ZERO,
            heartbeat: false,
            datagram: false,
            forecast: Some(fb),
            payload_len: 0,
        }
        .encode_with_padding();
        let wire = Packet {
            flow: FlowId::PRIMARY,
            seq: 0,
            sent_at: Timestamp::ZERO,
            size: payload.len() as u32,
            payload,
        };
        let _ = t.on_wire_packet(wire, Timestamp::ZERO);
        // Flow 1: a deep backlog far over the cap; flow 2: two packets.
        for seq in 0..40 {
            t.inject_local(client_packet(1, seq, 1_000), Timestamp::ZERO);
        }
        t.inject_local(client_packet(2, 0, 100), Timestamp::ZERO);
        t.inject_local(client_packet(2, 1, 100), Timestamp::ZERO);
        let _ = t.poll_wire(Timestamp::ZERO);
        assert!(t.stats().dropped > 0, "cap must shed backlog");
        // Drops come from the long flow; the short flow is untouched
        // (either still queued or already forwarded).
        let flow2_left = t.flow_queue_len(FlowId(2));
        let flow1_left = t.flow_queue_len(FlowId(1));
        assert!(flow1_left < 40);
        assert!(flow2_left <= 2);
        let total_flow2 = 2 - flow2_left;
        let _ = total_flow2;
        // Total backlog respects the cap after enforcement.
        let cap = 8 * 1_500;
        assert!(
            t.queued_bytes() <= cap,
            "backlog {} > cap",
            t.queued_bytes()
        );
    }
}
