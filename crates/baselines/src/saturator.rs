//! The Saturator (§4.1): the paper's trace-capture tool, reproduced
//! against simulated radios.
//!
//! The sender "keeps a window of N packets in flight to the receiver, and
//! adjusts N in order to keep the observed RTT greater than 750 ms (but
//! less than 3000 ms)": with ≥750 ms of standing queue the link never
//! starves, so the receiver-side arrival times *are* the link's delivery
//! opportunities — the ground-truth trace Cellsim later replays.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sprout_sim::{Endpoint, FlowId, Packet};
use sprout_trace::{Duration, Timestamp, Trace, MTU_BYTES};

/// Lower bound on the standing RTT (§4.1).
pub const RTT_FLOOR: Duration = Duration::from_millis(750);
/// Upper bound, beyond which carriers may throttle (§4.1).
pub const RTT_CEILING: Duration = Duration::from_millis(3_000);

const MAGIC_PROBE: u8 = 0xB0;
const MAGIC_PROBE_ACK: u8 = 0xB1;
const PROBE_ACK_LEN: usize = 17;

fn encode_probe(seq: u64, sent_at: Timestamp) -> Bytes {
    let mut b = BytesMut::with_capacity(MTU_BYTES as usize);
    b.put_u8(MAGIC_PROBE);
    b.put_u64_le(seq);
    b.put_u64_le(sent_at.as_micros());
    b.resize(MTU_BYTES as usize, 0);
    b.freeze()
}

fn encode_probe_ack(seq: u64, echo: Timestamp) -> Bytes {
    let mut b = BytesMut::with_capacity(PROBE_ACK_LEN);
    b.put_u8(MAGIC_PROBE_ACK);
    b.put_u64_le(seq);
    b.put_u64_le(echo.as_micros());
    b.freeze()
}

/// The window-adjusting sender half.
pub struct SaturatorSender {
    flow: FlowId,
    /// Target packets in flight.
    window: u64,
    next_seq: u64,
    acked: u64,
    last_rtt: Option<Duration>,
}

impl SaturatorSender {
    /// New saturator starting from a small window.
    pub fn new() -> Self {
        SaturatorSender {
            flow: FlowId::PRIMARY,
            window: 10,
            next_seq: 0,
            acked: 0,
            last_rtt: None,
        }
    }

    /// Latest observed RTT.
    pub fn last_rtt(&self) -> Option<Duration> {
        self.last_rtt
    }

    /// Current window target.
    pub fn window(&self) -> u64 {
        self.window
    }
}

impl Default for SaturatorSender {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint for SaturatorSender {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        let mut buf = &packet.payload[..];
        if buf.is_empty() || buf.get_u8() != MAGIC_PROBE_ACK || buf.len() < PROBE_ACK_LEN - 1 {
            return;
        }
        let seq = buf.get_u64_le();
        let echo = Timestamp::from_micros(buf.get_u64_le());
        self.acked = self.acked.max(seq + 1);
        let rtt = now.saturating_since(echo);
        self.last_rtt = Some(rtt);
        // §4.1 control law: grow while under the floor, shrink over the
        // ceiling, hold in between.
        if rtt < RTT_FLOOR {
            self.window += 1;
        } else if rtt > RTT_CEILING {
            self.window = self.window.saturating_sub(1).max(1);
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        while self.next_seq.saturating_sub(self.acked) < self.window {
            out.push(Packet {
                flow: self.flow,
                seq: self.next_seq,
                sent_at: Timestamp::ZERO,
                size: MTU_BYTES,
                payload: encode_probe(self.next_seq, now),
            });
            self.next_seq += 1;
        }
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        None // purely ack-clocked
    }
}

/// Receiver half: acks every probe over the (well-provisioned) feedback
/// path and records arrival times — the captured trace.
pub struct SaturatorReceiver {
    flow: FlowId,
    arrivals: Vec<Timestamp>,
    pending: Vec<Packet>,
}

impl SaturatorReceiver {
    /// New recording receiver.
    pub fn new() -> Self {
        SaturatorReceiver {
            flow: FlowId::PRIMARY,
            arrivals: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// The captured delivery-opportunity trace so far.
    pub fn captured_trace(&self) -> Trace {
        Trace::new(self.arrivals.clone())
    }
}

impl Default for SaturatorReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint for SaturatorReceiver {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        let mut buf = &packet.payload[..];
        if buf.is_empty() || buf.get_u8() != MAGIC_PROBE {
            return;
        }
        let seq = buf.get_u64_le();
        let echo = Timestamp::from_micros(buf.get_u64_le());
        self.arrivals.push(now);
        self.pending.push(Packet {
            flow: self.flow,
            seq,
            sent_at: Timestamp::ZERO,
            size: 40,
            payload: encode_probe_ack(seq, echo),
        });
    }

    fn poll_into(&mut self, _now: Timestamp, out: &mut Vec<Packet>) {
        out.append(&mut self.pending);
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_sim::{PathConfig, Simulation};

    #[test]
    fn keeps_rtt_between_floor_and_ceiling() {
        // Steady 100-opportunity/s link; generous feedback path.
        let trace = Trace::from_millis((0..6_000).map(|i| i * 10));
        let feedback = Trace::from_millis(0..60_000);
        let mut sim = Simulation::new(
            SaturatorSender::new(),
            SaturatorReceiver::new(),
            PathConfig::standard(trace),
            PathConfig::standard(feedback),
        );
        sim.run_until(Timestamp::from_secs(60));
        let rtt = sim.a.last_rtt().expect("acks flowed");
        assert!(
            rtt >= RTT_FLOOR && rtt <= RTT_CEILING + Duration::from_millis(200),
            "standing RTT {rtt}"
        );
    }

    #[test]
    fn captured_trace_matches_link_capacity() {
        // The whole point of the tool: arrivals at the receiver = the
        // link's delivery schedule, once the queue never starves.
        let trace = Trace::from_millis((0..6_000).map(|i| i * 10));
        let feedback = Trace::from_millis(0..60_000);
        let mut sim = Simulation::new(
            SaturatorSender::new(),
            SaturatorReceiver::new(),
            PathConfig::standard(trace.clone()),
            PathConfig::standard(feedback),
        );
        sim.run_until(Timestamp::from_secs(60));
        let captured = sim.b.captured_trace();
        // After the ramp-up (first ~5 s), every opportunity carries a
        // probe: captured rate ≈ true capacity.
        let window = |tr: &Trace| {
            tr.opportunities_between(Timestamp::from_secs(10), Timestamp::from_secs(55))
        };
        let true_ops = window(&trace);
        let captured_ops = window(&captured);
        let ratio = captured_ops as f64 / true_ops as f64;
        assert!(
            ratio > 0.98 && ratio < 1.02,
            "captured {captured_ops} vs true {true_ops}"
        );
    }
}
