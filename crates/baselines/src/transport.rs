//! A reliable, ACK-clocked transport skeleton — the substrate under every
//! TCP congestion-control baseline in the evaluation (§5: Cubic, Reno,
//! Vegas, Compound TCP, LEDBAT).
//!
//! The skeleton handles sequencing, cumulative ACKs with duplicate-ACK
//! fast retransmit, RTO estimation per RFC 6298, and hands congestion
//! decisions to a pluggable [`CongestionControl`]. It is deliberately a
//! *model* of TCP at MTU-segment granularity: enough fidelity for the
//! queueing dynamics the paper studies (window growth → standing queue →
//! delay), without reimplementing byte-stream reassembly.

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sprout_sim::{Endpoint, FlowId, Packet};
use sprout_trace::{Duration, Timestamp, MTU_BYTES};

/// Congestion-control algorithm interface. Window units are MTU segments
/// (fractional, as most algorithms accumulate sub-segment credit).
pub trait CongestionControl: Send {
    /// A new cumulative ACK advanced the window by `newly_acked` segments.
    fn on_ack(&mut self, newly_acked: u64, rtt: Duration, now: Timestamp);
    /// A one-way delay sample measured from the data packet's transmit
    /// timestamp to the receiver's arrival timestamp (echoed in the ACK).
    /// Only delay-based algorithms (LEDBAT) care; default is a no-op.
    fn on_one_way_delay(&mut self, _delay: Duration) {}
    /// Loss inferred from triple duplicate ACKs (fast retransmit).
    fn on_loss(&mut self, now: Timestamp);
    /// Retransmission timeout fired.
    fn on_timeout(&mut self, now: Timestamp);
    /// Current congestion window in segments (≥ 1).
    fn window(&self) -> f64;
    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// RFC 6298 retransmission-timeout estimator.
#[derive(Clone, Debug)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    rto: Duration,
    /// Smallest RTT seen (used by delay-based algorithms).
    min_rtt: Option<Duration>,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            rto: Duration::from_secs(1),
            min_rtt: None,
        }
    }
}

impl RttEstimator {
    /// Incorporate a fresh RTT sample.
    pub fn update(&mut self, sample: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = Duration::from_micros(sample.as_micros() / 2);
            }
            Some(srtt) => {
                let sample_us = sample.as_micros() as i64;
                let srtt_us = srtt.as_micros() as i64;
                let err = (sample_us - srtt_us).unsigned_abs();
                // RTTVAR = 3/4 RTTVAR + 1/4 |err|; SRTT = 7/8 SRTT + 1/8 sample.
                self.rttvar = Duration::from_micros((3 * self.rttvar.as_micros() + err) / 4);
                self.srtt = Some(Duration::from_micros(
                    ((7 * srtt_us + sample_us) / 8) as u64,
                ));
            }
        }
        let srtt = self.srtt.unwrap();
        let candidate = srtt + Duration::from_micros(4 * self.rttvar.as_micros());
        // RFC 6298: RTO = max(1s floor is classical; we use 200 ms to suit
        // the 40 ms-RTT emulated path) and cap at 60 s.
        self.rto = candidate
            .max(Duration::from_millis(200))
            .min(Duration::from_secs(60));
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(sample),
            None => sample,
        });
    }

    /// Current smoothed RTT, if any sample arrived.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> Duration {
        self.rto
    }

    /// Minimum RTT observed.
    pub fn min_rtt(&self) -> Option<Duration> {
        self.min_rtt
    }

    /// Back off the RTO (exponential, on timeout).
    pub fn backoff(&mut self) {
        self.rto = (self.rto + self.rto).min(Duration::from_secs(60));
    }
}

// --- wire format (internal to the baseline suite) ---

const MAGIC_DATA: u8 = 0xD0;
const MAGIC_ACK: u8 = 0xA0;
/// Data header: magic(1) seq(8) sent_at(8).
const DATA_HEADER: usize = 17;
/// ACK: magic(1) cum_ack(8) echo_sent_at(8) recv_at(8).
const ACK_LEN: usize = 25;

fn encode_data(seq: u64, sent_at: Timestamp, size: u32) -> Bytes {
    let mut b = BytesMut::with_capacity(size as usize);
    b.put_u8(MAGIC_DATA);
    b.put_u64_le(seq);
    b.put_u64_le(sent_at.as_micros());
    b.resize(size as usize, 0);
    b.freeze()
}

fn encode_ack(cum_ack: u64, echo_sent_at: Timestamp, recv_at: Timestamp) -> Bytes {
    let mut b = BytesMut::with_capacity(ACK_LEN);
    b.put_u8(MAGIC_ACK);
    b.put_u64_le(cum_ack);
    b.put_u64_le(echo_sent_at.as_micros());
    b.put_u64_le(recv_at.as_micros());
    b.freeze()
}

enum Decoded {
    Data {
        seq: u64,
        sent_at: Timestamp,
    },
    Ack {
        cum_ack: u64,
        echo_sent_at: Timestamp,
        recv_at: Timestamp,
    },
    Junk,
}

fn decode(payload: &[u8]) -> Decoded {
    let mut buf = payload;
    if buf.is_empty() {
        return Decoded::Junk;
    }
    match buf.get_u8() {
        MAGIC_DATA if buf.len() >= DATA_HEADER - 1 => Decoded::Data {
            seq: buf.get_u64_le(),
            sent_at: Timestamp::from_micros(buf.get_u64_le()),
        },
        MAGIC_ACK if buf.len() >= ACK_LEN - 1 => Decoded::Ack {
            cum_ack: buf.get_u64_le(),
            echo_sent_at: Timestamp::from_micros(buf.get_u64_le()),
            recv_at: Timestamp::from_micros(buf.get_u64_le()),
        },
        _ => Decoded::Junk,
    }
}

/// Bulk-transfer TCP-model sender. Always has data (the §5.1 saturating
/// workload); sends MTU segments under `cc`'s window with fast retransmit
/// and RTO recovery.
pub struct TcpSender {
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,
    flow: FlowId,
    /// Next new sequence number to send.
    next_seq: u64,
    /// Highest cumulatively ACKed sequence (all below delivered).
    cum_ack: u64,
    /// Outstanding segments: seq → (last transmit time, transmit count).
    outstanding: BTreeMap<u64, (Timestamp, u32)>,
    dup_acks: u32,
    /// In fast-recovery until cum_ack passes this point.
    recover_until: Option<u64>,
    /// RTO deadline for the oldest outstanding segment.
    rto_deadline: Option<Timestamp>,
    /// Segments presumed lost (after an RTO all unacked segments are
    /// go-back-N candidates); they no longer count as in flight and are
    /// retransmitted ahead of new data as the window allows.
    lost: std::collections::BTreeSet<u64>,
    /// Fast-retransmit packets generated inside `on_packet`, drained by
    /// the next `poll`.
    pending_retx: Vec<Packet>,
    segments_sent: u64,
    retransmits: u64,
}

/// Receive-window cap in segments (≈ 6 MB, the order of Linux's default
/// tcp_rmem maximum): even an unbounded cellular queue cannot hold more
/// than one receive window of a single flow's data.
const MAX_WINDOW_SEGMENTS: usize = 4_096;

impl TcpSender {
    /// New saturating sender driven by `cc`.
    pub fn new(cc: Box<dyn CongestionControl>) -> Self {
        TcpSender {
            cc,
            rtt: RttEstimator::default(),
            flow: FlowId::PRIMARY,
            next_seq: 0,
            cum_ack: 0,
            outstanding: BTreeMap::new(),
            dup_acks: 0,
            recover_until: None,
            rto_deadline: None,
            lost: std::collections::BTreeSet::new(),
            pending_retx: Vec::new(),
            segments_sent: 0,
            retransmits: 0,
        }
    }

    /// Tag outgoing packets with a flow id (for shared-queue experiments).
    pub fn set_flow(&mut self, flow: FlowId) {
        self.flow = flow;
    }

    /// The congestion controller (diagnostics).
    pub fn cc(&self) -> &dyn CongestionControl {
        &*self.cc
    }

    /// The RTT estimator (diagnostics).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Total segments transmitted, including retransmits.
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Retransmitted segments.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    fn in_flight(&self) -> usize {
        self.outstanding.len() - self.lost.len()
    }

    fn transmit(&mut self, seq: u64, now: Timestamp, out: &mut Vec<Packet>) {
        let entry = self.outstanding.entry(seq).or_insert((now, 0));
        entry.0 = now;
        entry.1 += 1;
        if entry.1 > 1 {
            self.retransmits += 1;
        }
        self.segments_sent += 1;
        let payload = encode_data(seq, now, MTU_BYTES);
        out.push(Packet {
            flow: self.flow,
            seq,
            sent_at: Timestamp::ZERO,
            size: MTU_BYTES,
            payload,
        });
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rtt.rto());
        }
    }
}

impl Endpoint for TcpSender {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        let Decoded::Ack {
            cum_ack,
            echo_sent_at,
            recv_at,
        } = decode(&packet.payload)
        else {
            return;
        };
        // One-way delay of the acked data packet (sender clock → receiver
        // clock; the virtual clock is shared, and delay-based algorithms
        // only use differences so a fixed offset would cancel anyway).
        let one_way = recv_at.saturating_since(echo_sent_at);
        if one_way > Duration::ZERO {
            self.cc.on_one_way_delay(one_way);
        }
        if cum_ack > self.cum_ack {
            let newly = cum_ack - self.cum_ack;
            self.cum_ack = cum_ack;
            self.dup_acks = 0;
            // Drop everything acked from the outstanding map.
            let keep = self.outstanding.split_off(&cum_ack);
            self.outstanding = keep;
            self.lost = self.lost.split_off(&cum_ack);
            // Karn's rule: only time un-retransmitted segments. We use
            // the echoed transmit timestamp, which already excludes
            // ambiguity for retransmissions of the *echoed* segment.
            let sample = now.saturating_since(echo_sent_at);
            if sample > Duration::ZERO {
                self.rtt.update(sample);
            }
            if let Some(rec) = self.recover_until {
                if cum_ack >= rec {
                    self.recover_until = None;
                }
            }
            self.cc
                .on_ack(newly, now.saturating_since(echo_sent_at), now);
            // Continuous hole repair: any segment transmitted more than an
            // RTO ago while later data is being acked is presumed lost and
            // re-enters the window, instead of stalling for a global RTO
            // per hole (crucial after a mass-loss burst, e.g. CoDel during
            // an outage drain).
            let cutoff = self.rtt.rto();
            for (&seq, &(sent_at, _)) in self.outstanding.iter() {
                if now.saturating_since(sent_at) > cutoff {
                    self.lost.insert(seq);
                } else {
                    break; // BTreeMap is seq-ordered ≈ send-ordered
                }
            }
            self.rto_deadline = if self.outstanding.is_empty() {
                None
            } else {
                Some(now + self.rtt.rto())
            };
        } else {
            // Duplicate cumulative ACK: a later segment arrived before
            // `cum_ack`. Three in a row trigger fast retransmit.
            self.dup_acks += 1;
            if self.dup_acks == 3 && self.recover_until.is_none() {
                self.recover_until = Some(self.next_seq);
                self.cc.on_loss(now);
                // Retransmission of the missing segment happens in poll.
                if let Some((&seq, _)) = self.outstanding.iter().next() {
                    let mut out = Vec::new();
                    self.transmit(seq, now, &mut out);
                    // Stash for poll? Emit immediately via pending queue:
                    self.pending_retx.extend(out);
                }
            }
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        out.append(&mut self.pending_retx);
        // RTO?
        if let Some(deadline) = self.rto_deadline {
            if now >= deadline && !self.outstanding.is_empty() {
                self.cc.on_timeout(now);
                self.rtt.backoff();
                self.dup_acks = 0;
                self.recover_until = None;
                // Go-back-N: everything unacked is presumed lost and will
                // be retransmitted under the (collapsed) window, oldest
                // first.
                self.lost = self.outstanding.keys().copied().collect();
                self.rto_deadline = Some(now + self.rtt.rto());
            }
        }
        // Fill the window: retransmissions of presumed-lost segments take
        // priority over new data.
        let cwnd = self.cc.window().max(1.0) as usize;
        let cwnd = cwnd.min(MAX_WINDOW_SEGMENTS);
        while self.in_flight() < cwnd {
            if let Some(&seq) = self.lost.iter().next() {
                self.lost.remove(&seq);
                self.transmit(seq, now, out);
            } else if self.next_seq < self.cum_ack + MAX_WINDOW_SEGMENTS as u64 {
                let seq = self.next_seq;
                self.next_seq += 1;
                self.transmit(seq, now, out);
            } else {
                break; // receive-window limited
            }
        }
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        self.rto_deadline
    }
}

/// Receiver side of the TCP model: cumulative ACK per arriving segment
/// (no delayed ACKs — interactivity experiments want tight feedback).
pub struct TcpReceiver {
    flow: FlowId,
    /// Next in-order sequence expected.
    expected: u64,
    /// Out-of-order segments already received.
    ooo: std::collections::BTreeSet<u64>,
    pending_acks: Vec<Packet>,
    segments_received: u64,
}

impl TcpReceiver {
    /// New receiver.
    pub fn new() -> Self {
        TcpReceiver {
            flow: FlowId::PRIMARY,
            expected: 0,
            ooo: std::collections::BTreeSet::new(),
            pending_acks: Vec::new(),
            segments_received: 0,
        }
    }

    /// Tag ACKs with a flow id.
    pub fn set_flow(&mut self, flow: FlowId) {
        self.flow = flow;
    }

    /// Segments received (any order, not deduplicated).
    pub fn segments_received(&self) -> u64 {
        self.segments_received
    }
}

impl Default for TcpReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint for TcpReceiver {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        let Decoded::Data { seq, sent_at } = decode(&packet.payload) else {
            return;
        };
        self.segments_received += 1;
        if seq == self.expected {
            self.expected += 1;
            while self.ooo.remove(&self.expected) {
                self.expected += 1;
            }
        } else if seq > self.expected {
            self.ooo.insert(seq);
        }
        let ack = encode_ack(self.expected, sent_at, now);
        self.pending_acks.push(Packet {
            flow: self.flow,
            seq: self.expected,
            sent_at: Timestamp::ZERO,
            size: ACK_LEN as u32 + 15, // ACK + L3/L4 overhead ≈ 40 B
            payload: ack,
        });
    }

    fn poll_into(&mut self, _now: Timestamp, out: &mut Vec<Packet>) {
        out.append(&mut self.pending_acks);
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fixed-window controller for exercising the transport skeleton.
    struct FixedWindow(f64);
    impl CongestionControl for FixedWindow {
        fn on_ack(&mut self, _n: u64, _rtt: Duration, _now: Timestamp) {}
        fn on_loss(&mut self, _now: Timestamp) {}
        fn on_timeout(&mut self, _now: Timestamp) {}
        fn window(&self) -> f64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn rtt_estimator_converges_and_bounds_rto() {
        let mut e = RttEstimator::default();
        for _ in 0..50 {
            e.update(Duration::from_millis(40));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt >= Duration::from_millis(39) && srtt <= Duration::from_millis(41));
        assert!(e.rto() >= Duration::from_millis(200)); // floor
        assert_eq!(e.min_rtt().unwrap(), Duration::from_millis(40));
        e.backoff();
        e.backoff();
        assert!(e.rto() <= Duration::from_secs(60));
    }

    #[test]
    fn sender_fills_fixed_window() {
        let mut s = TcpSender::new(Box::new(FixedWindow(8.0)));
        let pkts = s.poll(t(0));
        assert_eq!(pkts.len(), 8);
        // No acks: window stays full, nothing more to send.
        assert_eq!(s.poll(t(10)).len(), 0);
    }

    #[test]
    fn ack_clock_releases_new_segments() {
        let mut s = TcpSender::new(Box::new(FixedWindow(4.0)));
        let first = s.poll(t(0));
        assert_eq!(first.len(), 4);
        // Receiver acks segment 0 → expected becomes 1.
        let ack = Packet {
            flow: FlowId::PRIMARY,
            seq: 1,
            sent_at: t(0),
            size: 40,
            payload: encode_ack(1, t(0), t(20)),
        };
        s.on_packet(ack, t(40));
        let next = s.poll(t(40));
        assert_eq!(next.len(), 1, "one acked → one new");
        assert!(s.rtt().srtt().is_some());
    }

    #[test]
    fn triple_dupack_triggers_single_fast_retransmit() {
        struct LossSpySync(std::sync::Arc<std::sync::atomic::AtomicU32>);
        impl CongestionControl for LossSpySync {
            fn on_ack(&mut self, _: u64, _: Duration, _: Timestamp) {}
            fn on_loss(&mut self, _now: Timestamp) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            fn on_timeout(&mut self, _: Timestamp) {}
            fn window(&self) -> f64 {
                10.0
            }
            fn name(&self) -> &'static str {
                "spy"
            }
        }
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut s = TcpSender::new(Box::new(LossSpySync(counter.clone())));
        let _ = s.poll(t(0)); // 10 segments out
                              // Segment 0 lost: acks echo later segments but cum stays 0.
        for i in 1..=4u64 {
            let ack = Packet {
                flow: FlowId::PRIMARY,
                seq: 0,
                sent_at: t(0),
                size: 40,
                payload: encode_ack(0, t(0), t(20 + i)),
            };
            s.on_packet(ack, t(20 + i));
        }
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 1);
        let out = s.poll(t(30));
        // The fast-retransmitted segment 0 is among the emitted packets.
        assert!(out.iter().any(|p| p.seq == 0));
        assert!(s.retransmits() >= 1);
    }

    #[test]
    fn rto_fires_and_backs_off() {
        struct TimeoutSpy(std::sync::Arc<std::sync::atomic::AtomicU32>);
        impl CongestionControl for TimeoutSpy {
            fn on_ack(&mut self, _: u64, _: Duration, _: Timestamp) {}
            fn on_loss(&mut self, _: Timestamp) {}
            fn on_timeout(&mut self, _now: Timestamp) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
            fn window(&self) -> f64 {
                2.0
            }
            fn name(&self) -> &'static str {
                "tspy"
            }
        }
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let mut s = TcpSender::new(Box::new(TimeoutSpy(counter.clone())));
        let _ = s.poll(t(0));
        let deadline = s.next_wakeup().unwrap();
        assert!(deadline > t(0));
        // Nothing acked by the deadline: timeout fires on the next poll.
        let out = s.poll(deadline + Duration::from_millis(1));
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 1);
        assert!(out.iter().any(|p| p.seq == 0), "oldest seg retransmitted");
    }

    #[test]
    fn receiver_acks_cumulatively_and_handles_reorder() {
        let mut r = TcpReceiver::new();
        let data = |seq: u64| Packet {
            flow: FlowId::PRIMARY,
            seq,
            sent_at: t(0),
            size: MTU_BYTES,
            payload: encode_data(seq, t(0), MTU_BYTES),
        };
        r.on_packet(data(0), t(1));
        r.on_packet(data(2), t(2)); // gap at 1
        r.on_packet(data(1), t(3)); // fills the gap
        let acks = r.poll(t(3));
        assert_eq!(acks.len(), 3);
        let cums: Vec<u64> = acks
            .iter()
            .map(|a| match decode(&a.payload) {
                Decoded::Ack { cum_ack, .. } => cum_ack,
                _ => panic!("not an ack"),
            })
            .collect();
        assert_eq!(cums, vec![1, 1, 3]);
        assert_eq!(r.segments_received(), 3);
    }

    #[test]
    fn junk_packets_are_ignored() {
        let mut s = TcpSender::new(Box::new(FixedWindow(2.0)));
        let mut r = TcpReceiver::new();
        let junk = Packet::from_payload(FlowId::PRIMARY, 0, Bytes::from_static(b"xx"));
        s.on_packet(junk.clone(), t(0));
        r.on_packet(junk, t(0));
        assert_eq!(r.segments_received(), 0);
    }
}
