//! TCP Reno (Jacobson, SIGCOMM 1988 + NewReno-style fast recovery):
//! slow start, AIMD congestion avoidance, halving on loss. The classic
//! reactive baseline the paper's §6 traces back to.

use crate::transport::CongestionControl;
use sprout_trace::{Duration, Timestamp};

/// Reno congestion control.
#[derive(Clone, Debug)]
pub struct Reno {
    cwnd: f64,
    ssthresh: f64,
    min_rtt: Option<Duration>,
}

impl Reno {
    /// Standard initial window of 2 segments, effectively-infinite
    /// ssthresh.
    pub fn new() -> Self {
        Reno {
            cwnd: 2.0,
            ssthresh: f64::INFINITY,
            min_rtt: None,
        }
    }

    /// Whether we are in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl Default for Reno {
    fn default() -> Self {
        Self::new()
    }
}

/// HyStart-style delay-based slow-start exit shared by the loss-based
/// algorithms: deep per-user cellular queues never drop, so without this
/// a sender would stay in exponential slow start for the whole run —
/// real stacks (Linux HyStart, Windows) exit once the RTT inflates well
/// past its floor.
pub(crate) fn slow_start_delay_exit(min_rtt: &mut Option<Duration>, rtt: Duration) -> bool {
    let floor = match min_rtt {
        Some(m) => {
            if rtt < *m {
                *m = rtt;
            }
            *m
        }
        None => {
            *min_rtt = Some(rtt);
            rtt
        }
    };
    rtt.as_micros() > 2 * floor.as_micros()
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, newly_acked: u64, rtt: Duration, _now: Timestamp) {
        if self.in_slow_start() && slow_start_delay_exit(&mut self.min_rtt, rtt) {
            self.ssthresh = self.cwnd;
        }
        // Appropriate byte counting (RFC 3465, L=2): one cumulative ACK
        // covering many segments (common after loss recovery) must not
        // inflate slow start by its full span.
        let credit = newly_acked.min(2);
        for _ in 0..credit {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0; // exponential per RTT
            } else {
                self.cwnd += newly_acked as f64 / credit as f64 / self.cwnd;
            }
        }
    }

    fn on_loss(&mut self, _now: Timestamp) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    fn on_timeout(&mut self, _now: Timestamp) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn window(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "reno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Timestamp {
        Timestamp::ZERO
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut r = Reno::new();
        assert!(r.in_slow_start());
        // One RTT worth of per-segment acks for a window of 2 → cwnd 4.
        for _ in 0..2 {
            r.on_ack(1, Duration::from_millis(40), t0());
        }
        assert!((r.window() - 4.0).abs() < 1e-9);
        for _ in 0..4 {
            r.on_ack(1, Duration::from_millis(40), t0());
        }
        assert!((r.window() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn congestion_avoidance_adds_one_per_rtt() {
        let mut r = Reno::new();
        for _ in 0..8 {
            r.on_ack(1, Duration::from_millis(40), t0());
        }
        r.on_loss(t0());
        let w0 = r.window();
        assert!(!r.in_slow_start());
        // A full window of per-segment acks grows cwnd by ≈ 1.
        for _ in 0..w0 as u64 {
            r.on_ack(1, Duration::from_millis(40), t0());
        }
        assert!((r.window() - (w0 + 1.0)).abs() < 0.2);
    }

    #[test]
    fn loss_halves_timeout_resets() {
        let mut r = Reno::new();
        for _ in 0..30 {
            r.on_ack(1, Duration::from_millis(40), t0());
        }
        let w = r.window();
        r.on_loss(t0());
        assert!((r.window() - w / 2.0).abs() < 1e-9);
        r.on_timeout(t0());
        assert_eq!(r.window(), 1.0);
        // And slow-start threshold remembers the halved window.
        assert!(r.in_slow_start());
    }

    #[test]
    fn window_never_below_one() {
        let mut r = Reno::new();
        for _ in 0..10 {
            r.on_timeout(t0());
        }
        assert!(r.window() >= 1.0);
    }
}
