//! The omniscient protocol (§5.1): "one that sends packets timed to
//! arrive exactly when the network is ready to dequeue and transmit a
//! packet". It reads the future of the link trace and schedules each
//! MTU-sized packet to reach the queue at the instant of its delivery
//! opportunity. It achieves 100% utilization with zero queueing, and its
//! 95% end-to-end delay defines the floor from which self-inflicted
//! delay is measured.

use sprout_sim::{Endpoint, FlowId, Packet};
use sprout_trace::{Duration, Timestamp, Trace, MTU_BYTES};

/// Omniscient sender over a known trace.
pub struct OmniscientSender {
    /// Remaining delivery opportunities (reversed, so `pop` yields the
    /// next one).
    schedule: Vec<Timestamp>,
    prop_delay: Duration,
    flow: FlowId,
    seq: u64,
}

impl OmniscientSender {
    /// Build from the trace the link will replay and the path propagation
    /// delay (packets are sent `prop_delay` early so they arrive exactly
    /// on time).
    pub fn new(trace: &Trace, prop_delay: Duration) -> Self {
        // Opportunities inside the first `prop_delay` cannot be hit from
        // t = 0; sending for them anyway would make those packets miss,
        // queue behind, and shift *every* later packet by one slot — a
        // permanent self-inflicted lag. The omniscient protocol simply
        // forgoes them.
        let mut schedule: Vec<Timestamp> = trace
            .opportunities()
            .iter()
            .copied()
            .filter(|op| op.as_micros() >= prop_delay.as_micros())
            .collect();
        schedule.reverse();
        OmniscientSender {
            schedule,
            prop_delay,
            flow: FlowId::PRIMARY,
            seq: 0,
        }
    }

    fn next_send_time(&self) -> Option<Timestamp> {
        self.schedule
            .last()
            .map(|&op| Timestamp::from_micros(op.as_micros() - self.prop_delay.as_micros()))
    }
}

impl Endpoint for OmniscientSender {
    fn on_packet(&mut self, _packet: Packet, _now: Timestamp) {}

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        while let Some(send_at) = self.next_send_time() {
            if send_at > now {
                break;
            }
            self.schedule.pop();
            out.push(Packet::opaque(self.flow, self.seq, MTU_BYTES));
            self.seq += 1;
        }
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        self.next_send_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprout_sim::{direction_stats, PathConfig, Simulation, SinkEndpoint};

    #[test]
    fn achieves_full_utilization_and_floor_delay() {
        let trace = Trace::from_millis((25..2_000).map(|i| i * 25)); // 40 pps
        let sender = OmniscientSender::new(&trace, Duration::from_millis(20));
        let mut sim = Simulation::new(
            sender,
            SinkEndpoint::new(),
            PathConfig::standard(trace),
            PathConfig::standard(Trace::from_millis([0])),
        );
        sim.run_until(Timestamp::from_secs(50));
        let stats = direction_stats(
            sim.ab_path(),
            Timestamp::from_secs(2),
            Timestamp::from_secs(50),
        );
        assert!(stats.utilization > 0.999, "util {}", stats.utilization);
        // Every packet arrives exactly at its opportunity: p95 equals the
        // omniscient baseline and self-inflicted delay is ~0.
        assert_eq!(stats.p95_delay, stats.omniscient_p95);
        assert_eq!(stats.self_inflicted.unwrap(), Duration::ZERO);
    }

    #[test]
    fn wastes_nothing_on_irregular_traces() {
        // Bursty trace: opportunities in clumps.
        let mut ms = Vec::new();
        for burst in 0..50u64 {
            for k in 0..10u64 {
                ms.push(1_000 + burst * 400 + k); // 10 per ms-cluster
            }
        }
        let trace = Trace::from_millis(ms);
        let sender = OmniscientSender::new(&trace, Duration::from_millis(20));
        let mut sim = Simulation::new(
            sender,
            SinkEndpoint::new(),
            PathConfig::standard(trace.clone()),
            PathConfig::standard(Trace::from_millis([0])),
        );
        sim.run_until(Timestamp::from_secs(25));
        let delivered =
            sim.ab_metrics()
                .delivered_bytes(Timestamp::ZERO, Timestamp::from_secs(25), None);
        assert_eq!(delivered, trace.capacity_bytes());
    }
}
