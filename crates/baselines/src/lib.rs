//! Baseline protocols for the Sprout evaluation (§5): the TCP
//! congestion-control suite (Reno, Cubic, Vegas, Compound, LEDBAT) over a
//! shared reliable-transport skeleton, open-loop models of the
//! closed-source videoconferencing applications (Skype, FaceTime,
//! Hangout), the omniscient protocol that defines the self-inflicted
//! delay floor, and a reproduction of the Saturator trace-capture tool.

#![warn(missing_docs)]

pub mod apps;
pub mod compound;
pub mod cubic;
pub mod ledbat;
pub mod omniscient;
pub mod reno;
pub mod saturator;
pub mod transport;
pub mod vegas;

pub use apps::{AppProfile, VideoApp, VideoAppReceiver, VideoAppSender};
pub use compound::Compound;
pub use cubic::Cubic;
pub use ledbat::Ledbat;
pub use omniscient::OmniscientSender;
pub use reno::Reno;
pub use saturator::{SaturatorReceiver, SaturatorSender};
pub use transport::{CongestionControl, RttEstimator, TcpReceiver, TcpSender};
pub use vegas::Vegas;
