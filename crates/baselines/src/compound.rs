//! Compound TCP (Tan, Song, Zhang, Sridharan — INFOCOM 2006), the Windows
//! default of the paper's era (§5): a loss-based window `cwnd` plus a
//! delay-based window `dwnd`. The delay component grows aggressively
//! while the queue is short and retreats as queueing delay appears,
//! leaving the loss component to provide TCP fairness.

use crate::transport::CongestionControl;
use sprout_trace::{Duration, Timestamp};

/// Published Compound parameters.
const ALPHA: f64 = 0.125;
const BETA: f64 = 0.5;
const K: f64 = 0.75;
/// Backlog threshold γ in packets.
const GAMMA: f64 = 30.0;
/// dwnd retreat factor ζ.
const ZETA: f64 = 1.0;

/// Compound TCP congestion control.
#[derive(Clone, Debug)]
pub struct Compound {
    cwnd: f64,
    dwnd: f64,
    ssthresh: f64,
    base_rtt: Option<Duration>,
    interval_min_rtt: Option<Duration>,
    acked_in_interval: u64,
    ss_min_rtt: Option<Duration>,
}

impl Compound {
    /// New Compound flow.
    pub fn new() -> Self {
        Compound {
            cwnd: 2.0,
            dwnd: 0.0,
            ssthresh: f64::INFINITY,
            base_rtt: None,
            interval_min_rtt: None,
            acked_in_interval: 0,
            ss_min_rtt: None,
        }
    }

    /// The delay-based component (diagnostics).
    pub fn dwnd(&self) -> f64 {
        self.dwnd
    }
}

impl Default for Compound {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Compound {
    fn on_ack(&mut self, newly_acked: u64, rtt: Duration, _now: Timestamp) {
        // Delay-based slow-start exit (deep cellular queues never drop).
        if self.cwnd < self.ssthresh
            && crate::reno::slow_start_delay_exit(&mut self.ss_min_rtt, rtt)
        {
            self.ssthresh = self.cwnd;
        }
        // Loss-based half behaves like Reno (ABC-capped in slow start).
        let credit = newly_acked.min(2);
        for _ in 0..credit {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += newly_acked as f64 / credit as f64 / (self.cwnd + self.dwnd);
            }
        }
        if rtt > Duration::ZERO {
            self.base_rtt = Some(match self.base_rtt {
                Some(b) => b.min(rtt),
                None => rtt,
            });
            self.interval_min_rtt = Some(match self.interval_min_rtt {
                Some(m) => m.min(rtt),
                None => rtt,
            });
        }
        self.acked_in_interval += newly_acked;
        let win = self.cwnd + self.dwnd;
        if (self.acked_in_interval as f64) < win {
            return;
        }
        // Once per RTT: update the delay window.
        let base = self.base_rtt.map(|d| d.as_secs_f64()).unwrap_or(0.0);
        let cur = self
            .interval_min_rtt
            .map(|d| d.as_secs_f64())
            .unwrap_or(base)
            .max(1e-6);
        let diff = win * (cur - base) / cur; // backlog estimate in packets
        if diff < GAMMA {
            // Scalable growth: α·win^k − 1 per RTT.
            self.dwnd += (ALPHA * win.powf(K) - 1.0).max(0.0);
        } else {
            self.dwnd = (self.dwnd - ZETA * diff).max(0.0);
        }
        self.acked_in_interval = 0;
        self.interval_min_rtt = None;
    }

    fn on_loss(&mut self, _now: Timestamp) {
        let win = self.cwnd + self.dwnd;
        self.ssthresh = (win / 2.0).max(2.0);
        self.cwnd = (self.cwnd / 2.0).max(2.0);
        // dwnd on loss: win·(1−β) − cwnd/2 (floored).
        self.dwnd = (win * (1.0 - BETA) - self.cwnd).max(0.0);
    }

    fn on_timeout(&mut self, _now: Timestamp) {
        self.ssthresh = ((self.cwnd + self.dwnd) / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.dwnd = 0.0;
    }

    fn window(&self) -> f64 {
        self.cwnd + self.dwnd
    }

    fn name(&self) -> &'static str {
        "compound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Timestamp {
        Timestamp::ZERO
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn one_rtt(c: &mut Compound, rtt: Duration) {
        let need = c.window() as u64 + 1;
        c.on_ack(need, rtt, t0());
    }

    #[test]
    fn delay_window_grows_on_uncongested_path() {
        let mut c = Compound::new();
        c.on_loss(t0()); // leave slow start so dwnd dynamics dominate
        let start = c.window();
        // The scalable term α·win^k − 1 only turns positive for win ≳ 16
        // (Compound targets high-BDP paths); give Reno growth time to get
        // there, after which dwnd must engage and accelerate.
        for _ in 0..40 {
            one_rtt(&mut c, ms(40));
        }
        assert!(c.dwnd() > 0.0, "dwnd should engage");
        assert!(c.window() > start + 30.0, "got {}", c.window());
    }

    #[test]
    fn delay_window_retreats_under_queueing() {
        let mut c = Compound::new();
        c.on_loss(t0());
        for _ in 0..30 {
            one_rtt(&mut c, ms(40));
        }
        let dwnd_peak = c.dwnd();
        assert!(dwnd_peak > 1.0);
        // Sustained queueing: backlog estimate >> γ.
        for _ in 0..20 {
            one_rtt(&mut c, ms(400));
        }
        assert!(
            c.dwnd() < dwnd_peak * 0.5,
            "dwnd {} vs {dwnd_peak}",
            c.dwnd()
        );
    }

    #[test]
    fn loss_halves_combined_window() {
        let mut c = Compound::new();
        c.on_loss(t0());
        for _ in 0..20 {
            one_rtt(&mut c, ms(40));
        }
        let before = c.window();
        c.on_loss(t0());
        assert!(c.window() <= before * 0.6 + 1.0);
    }

    #[test]
    fn timeout_collapses_everything() {
        let mut c = Compound::new();
        for _ in 0..10 {
            one_rtt(&mut c, ms(40));
        }
        c.on_timeout(t0());
        assert_eq!(c.window(), 1.0);
        assert_eq!(c.dwnd(), 0.0);
    }
}
