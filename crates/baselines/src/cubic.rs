//! TCP Cubic (Ha, Rhee, Xu — and RFC 8312), the Linux default the paper
//! evaluates as its primary loss-based baseline (§5). Window growth is a
//! cubic function of time since the last loss, anchored at the pre-loss
//! window `W_max`, with the standard TCP-friendly region and fast
//! convergence.

use crate::transport::CongestionControl;
use sprout_trace::{Duration, Timestamp};

/// RFC 8312 constants.
const C: f64 = 0.4;
const BETA: f64 = 0.7;

/// Cubic congestion control.
#[derive(Clone, Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window at the last congestion event.
    w_max: f64,
    /// Time of the last congestion event.
    epoch_start: Option<Timestamp>,
    /// Cubic inflection delay K = cbrt(W_max·(1−β)/C).
    k: f64,
    /// Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    /// Latest RTT sample (drives W_est growth).
    last_rtt: Duration,
    /// RTT floor for the HyStart-style slow-start exit.
    min_rtt: Option<Duration>,
}

impl Cubic {
    /// New Cubic flow (initial window 2).
    pub fn new() -> Self {
        Cubic {
            cwnd: 2.0,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            last_rtt: Duration::from_millis(100),
            min_rtt: None,
        }
    }

    fn enter_epoch(&mut self, now: Timestamp) {
        self.epoch_start = Some(now);
        self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
        self.w_est = self.cwnd;
    }

    /// W_cubic(t) per RFC 8312 §4.1.
    fn w_cubic(&self, t_secs: f64) -> f64 {
        C * (t_secs - self.k).powi(3) + self.w_max
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, newly_acked: u64, rtt: Duration, now: Timestamp) {
        self.last_rtt = rtt;
        if self.cwnd < self.ssthresh {
            // HyStart: leave slow start on RTT inflation (Linux default),
            // since deep cellular queues never produce the loss exit.
            if crate::reno::slow_start_delay_exit(&mut self.min_rtt, rtt) {
                self.ssthresh = self.cwnd;
                self.w_max = self.cwnd;
                self.enter_epoch(now);
            } else {
                // ABC (RFC 3465, L=2): cap growth per ACK event.
                self.cwnd += (newly_acked as f64).min(2.0);
                return;
            }
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(now);
        }
        let t = now
            .saturating_since(self.epoch_start.unwrap())
            .as_secs_f64();
        let rtt_s = rtt.as_secs_f64().max(1e-3);
        // RFC 8312 §4.1: approach W_cubic(t+RTT), clamped to at most 1.5×
        // cwnd per RTT so aggregated cumulative ACKs (common after
        // recovery) cannot detonate the window.
        let target = self.w_cubic(t + rtt_s).clamp(self.cwnd, self.cwnd * 1.5);
        let credit = (newly_acked as f64).min(2.0);
        self.cwnd += (target - self.cwnd) / self.cwnd * credit;
        // TCP-friendly region (RFC 8312 §4.2), time-based: the window
        // never grows slower than a Reno flow started at the loss event.
        self.w_est = self.w_max * BETA + 3.0 * (1.0 - BETA) / (1.0 + BETA) * (t / rtt_s);
        self.cwnd = self.cwnd.max(self.w_est).max(2.0);
    }

    fn on_loss(&mut self, now: Timestamp) {
        // Fast convergence (RFC 8312 §4.6).
        if self.cwnd < self.w_max {
            self.w_max = self.cwnd * (2.0 - BETA) / 2.0;
        } else {
            self.w_max = self.cwnd;
        }
        self.cwnd = (self.cwnd * BETA).max(2.0);
        self.ssthresh = self.cwnd;
        self.enter_epoch(now);
    }

    fn on_timeout(&mut self, now: Timestamp) {
        self.w_max = self.cwnd;
        self.ssthresh = (self.cwnd * BETA).max(2.0);
        self.cwnd = 1.0;
        self.epoch_start = None;
        let _ = now;
    }

    fn window(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn rtt() -> Duration {
        Duration::from_millis(40)
    }

    #[test]
    fn slow_start_until_first_loss() {
        let mut c = Cubic::new();
        // Per-segment acks (the transport acks every segment): one RTT of
        // acks doubles the window.
        for _ in 0..2 {
            c.on_ack(1, rtt(), t(0));
        }
        for _ in 0..4 {
            c.on_ack(1, rtt(), t(40));
        }
        assert!((c.window() - 8.0).abs() < 1e-9);
        c.on_loss(t(80));
        assert!((c.window() - 8.0 * BETA).abs() < 1e-9);
    }

    #[test]
    fn window_recovers_toward_w_max_concavely() {
        let mut c = Cubic::new();
        // Grow to 100 then lose.
        for _ in 0..98 {
            c.on_ack(1, rtt(), t(0));
        }
        assert!((c.window() - 100.0).abs() < 1e-9);
        c.on_loss(t(0));
        let after_loss = c.window(); // 70
        assert!((after_loss - 70.0).abs() < 1e-9);
        // Feed acks over simulated time; growth should be fast at first
        // (steep cubic), slowing near w_max = 100.
        let mut now_ms = 40;
        let mut increments = Vec::new();
        let mut prev = c.window();
        for _ in 0..40 {
            for _ in 0..c.window() as u64 {
                c.on_ack(1, rtt(), t(now_ms));
            }
            increments.push(c.window() - prev);
            prev = c.window();
            now_ms += 40;
        }
        assert!(c.window() > 90.0, "approaches w_max, got {}", c.window());
        // First growth burst larger than growth near the plateau.
        let early: f64 = increments[..5].iter().sum();
        let late: f64 = increments[20..25].iter().sum();
        assert!(
            early > late,
            "concave approach: early {early:.2} late {late:.2}"
        );
    }

    #[test]
    fn fast_convergence_lowers_w_max_on_consecutive_losses() {
        let mut c = Cubic::new();
        for _ in 0..98 {
            c.on_ack(1, rtt(), t(0));
        }
        c.on_loss(t(0));
        let w_max_1 = c.w_max;
        // A second loss below w_max triggers fast convergence.
        c.on_loss(t(40));
        assert!(c.w_max < w_max_1);
    }

    #[test]
    fn timeout_collapses_window() {
        let mut c = Cubic::new();
        for _ in 0..60 {
            c.on_ack(1, rtt(), t(0));
        }
        c.on_timeout(t(10));
        assert_eq!(c.window(), 1.0);
    }

    #[test]
    fn tcp_friendly_floor_in_low_bdp() {
        // With a tiny w_max, the cubic curve is nearly flat; the Reno-like
        // W_est keeps growth at least Reno-paced.
        let mut c = Cubic::new();
        for _ in 0..4 {
            c.on_ack(1, rtt(), t(0));
        }
        c.on_loss(t(0));
        let w0 = c.window();
        let mut now_ms = 40;
        for _ in 0..50 {
            for _ in 0..c.window().max(1.0) as u64 {
                c.on_ack(1, rtt(), t(now_ms));
            }
            now_ms += 40;
        }
        assert!(c.window() > w0 + 3.0, "must keep growing: {}", c.window());
    }
}
