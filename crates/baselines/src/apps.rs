//! Models of the closed-source interactive applications the paper
//! measures: Skype, FaceTime, and Google Hangout (§5.2).
//!
//! The paper attributes their poor behaviour over cellular paths to one
//! mechanism (§5.2): "they do not react to rate increases and decreases
//! quickly enough … By continuing to send when the network has
//! dramatically slowed, these programs induce high delays that destroy
//! interactivity." The model is therefore an **open-loop, rate-based
//! sender** (no ACK clock): it transmits video frames at its current
//! encoding rate, ramps the rate up slowly while the receiver reports
//! low delay, and only after congestion has persisted for several
//! seconds does it cut the rate multiplicatively. Per-application
//! parameters (rate caps, ramp and reaction speeds) are calibrated to
//! the qualitative placements in Figure 7. This is a deliberate,
//! documented substitution for the unavailable closed-source binaries.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sprout_sim::{Endpoint, FlowId, Packet};
use sprout_trace::{Duration, Timestamp, MTU_BYTES};

/// One of the paper's modeled interactive applications, as a nameable
/// value: the app-workload axis of the scenario matrix refers to apps by
/// this enum and builds the sender/receiver pair from
/// [`VideoApp::profile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VideoApp {
    /// Skype ([`AppProfile::skype`]).
    Skype,
    /// FaceTime ([`AppProfile::facetime`]).
    Facetime,
    /// Google Hangout ([`AppProfile::hangout`]).
    Hangout,
}

impl VideoApp {
    /// All modeled apps, in the paper's order.
    pub fn all() -> [VideoApp; 3] {
        [VideoApp::Skype, VideoApp::Facetime, VideoApp::Hangout]
    }

    /// Machine-friendly identifier (labels, canonical encodings).
    pub fn id(self) -> &'static str {
        match self {
            VideoApp::Skype => "skype",
            VideoApp::Facetime => "facetime",
            VideoApp::Hangout => "hangout",
        }
    }

    /// The behavioural profile of this app.
    pub fn profile(self) -> AppProfile {
        match self {
            VideoApp::Skype => AppProfile::skype(),
            VideoApp::Facetime => AppProfile::facetime(),
            VideoApp::Hangout => AppProfile::hangout(),
        }
    }
}

/// Behavioural parameters of one application model.
#[derive(Clone, Debug)]
pub struct AppProfile {
    /// Application name as reported in figures.
    pub name: &'static str,
    /// Lowest encoding rate the app will drop to, bits/s.
    pub min_rate_bps: f64,
    /// Hard cap on the encoding rate, bits/s.
    pub max_rate_bps: f64,
    /// Rate at call start, bits/s.
    pub start_rate_bps: f64,
    /// Interval between video frames.
    pub frame_interval: Duration,
    /// Multiplicative rate growth per second of good feedback.
    pub increase_per_sec: f64,
    /// Multiplicative cut when reacting to congestion.
    pub decrease_factor: f64,
    /// Reported delay above this counts as congestion.
    pub congestion_threshold: Duration,
    /// Congestion must persist this long before the app reacts (the
    /// "several seconds and a user-visible outage" of §1).
    pub reaction_time: Duration,
    /// Minimum spacing between consecutive rate cuts.
    pub cooldown: Duration,
}

impl AppProfile {
    /// Skype model: climbs to high rates ("on fast network paths, Skype
    /// uses up to 5 Mbps", §5.2 fn. 8), reacts after ~3 s of congestion.
    pub fn skype() -> Self {
        AppProfile {
            name: "Skype",
            min_rate_bps: 64e3,
            max_rate_bps: 5e6,
            start_rate_bps: 300e3,
            frame_interval: Duration::from_millis(33),
            increase_per_sec: 1.10,
            decrease_factor: 0.5,
            congestion_threshold: Duration::from_millis(400),
            reaction_time: Duration::from_millis(2_500),
            cooldown: Duration::from_millis(1_500),
        }
    }

    /// FaceTime model: conservative cap, slowest to cut.
    pub fn facetime() -> Self {
        AppProfile {
            name: "Facetime",
            min_rate_bps: 96e3,
            max_rate_bps: 1e6,
            start_rate_bps: 300e3,
            frame_interval: Duration::from_millis(33),
            increase_per_sec: 1.08,
            decrease_factor: 0.7,
            congestion_threshold: Duration::from_millis(400),
            reaction_time: Duration::from_secs(3),
            cooldown: Duration::from_secs(2),
        }
    }

    /// Hangout model: mid cap, long reaction delay.
    pub fn hangout() -> Self {
        AppProfile {
            name: "Google Hangout",
            min_rate_bps: 64e3,
            max_rate_bps: 2.5e6,
            start_rate_bps: 300e3,
            frame_interval: Duration::from_millis(33),
            increase_per_sec: 1.08,
            decrease_factor: 0.5,
            congestion_threshold: Duration::from_millis(500),
            reaction_time: Duration::from_secs(4),
            cooldown: Duration::from_secs(2),
        }
    }
}

// --- wire format ---

const MAGIC_FRAME: u8 = 0xF0;
const MAGIC_REPORT: u8 = 0xF1;
/// Frame chunk: magic(1) seq(8) sent_at(8).
const FRAME_HEADER: usize = 17;
/// Report: magic(1) max_delay_us(8) received(8).
const REPORT_LEN: usize = 17;

fn encode_frame_chunk(seq: u64, sent_at: Timestamp, size: u32) -> Bytes {
    let mut b = BytesMut::with_capacity(size as usize);
    b.put_u8(MAGIC_FRAME);
    b.put_u64_le(seq);
    b.put_u64_le(sent_at.as_micros());
    b.resize(size as usize, 0);
    b.freeze()
}

fn encode_report(max_delay: Duration, received: u64) -> Bytes {
    let mut b = BytesMut::with_capacity(REPORT_LEN);
    b.put_u8(MAGIC_REPORT);
    b.put_u64_le(max_delay.as_micros());
    b.put_u64_le(received);
    b.freeze()
}

enum AppDecoded {
    Frame { sent_at: Timestamp },
    Report { max_delay: Duration },
    Junk,
}

fn decode(payload: &[u8]) -> AppDecoded {
    let mut buf = payload;
    if buf.is_empty() {
        return AppDecoded::Junk;
    }
    match buf.get_u8() {
        MAGIC_FRAME if buf.len() >= FRAME_HEADER - 1 => {
            let _seq = buf.get_u64_le();
            AppDecoded::Frame {
                sent_at: Timestamp::from_micros(buf.get_u64_le()),
            }
        }
        MAGIC_REPORT if buf.len() >= REPORT_LEN - 1 => AppDecoded::Report {
            max_delay: Duration::from_micros(buf.get_u64_le()),
        },
        _ => AppDecoded::Junk,
    }
}

/// The sending side of a modeled videoconference application.
pub struct VideoAppSender {
    profile: AppProfile,
    flow: FlowId,
    rate_bps: f64,
    next_frame: Timestamp,
    seq: u64,
    /// Sub-packet remainder carried between frames.
    carry_bytes: f64,
    /// When the current congestion episode started.
    congested_since: Option<Timestamp>,
    last_cut: Option<Timestamp>,
    last_increase: Timestamp,
}

impl VideoAppSender {
    /// New sender with the given behavioural profile.
    pub fn new(profile: AppProfile) -> Self {
        VideoAppSender {
            rate_bps: profile.start_rate_bps,
            profile,
            flow: FlowId::PRIMARY,
            next_frame: Timestamp::ZERO,
            seq: 0,
            carry_bytes: 0.0,
            congested_since: None,
            last_cut: None,
            last_increase: Timestamp::ZERO,
        }
    }

    /// Tag outgoing packets with a flow id.
    pub fn set_flow(&mut self, flow: FlowId) {
        self.flow = flow;
    }

    /// Current encoding rate, bits/s (diagnostics).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn maybe_adapt(&mut self, reported_delay: Duration, now: Timestamp) {
        let p = &self.profile;
        if reported_delay > p.congestion_threshold {
            let since = *self.congested_since.get_or_insert(now);
            let cooled = self
                .last_cut
                .map(|t| now.saturating_since(t) >= p.cooldown)
                .unwrap_or(true);
            if now.saturating_since(since) >= p.reaction_time && cooled {
                self.rate_bps = (self.rate_bps * p.decrease_factor).max(p.min_rate_bps);
                self.last_cut = Some(now);
                self.congested_since = Some(now); // new episode measurement
            }
        } else {
            self.congested_since = None;
        }
    }
}

impl Endpoint for VideoAppSender {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        if let AppDecoded::Report { max_delay } = decode(&packet.payload) {
            self.maybe_adapt(max_delay, now);
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        // Gentle multiplicative ramp while not congested.
        if self.congested_since.is_none()
            && now.saturating_since(self.last_increase) >= Duration::from_secs(1)
        {
            self.rate_bps =
                (self.rate_bps * self.profile.increase_per_sec).min(self.profile.max_rate_bps);
            self.last_increase = now;
        }
        while self.next_frame <= now {
            let frame_bytes =
                self.rate_bps * self.profile.frame_interval.as_secs_f64() / 8.0 + self.carry_bytes;
            let mut remaining = frame_bytes as u64;
            self.carry_bytes = frame_bytes - remaining as f64;
            // Chunk the frame into MTU packets (open loop — sent
            // regardless of network state; that is the §5.2 pathology).
            while remaining > 0 {
                let chunk = remaining.min((MTU_BYTES as usize - FRAME_HEADER) as u64);
                remaining -= chunk;
                let size = chunk as u32 + FRAME_HEADER as u32;
                out.push(Packet {
                    flow: self.flow,
                    seq: self.seq,
                    sent_at: Timestamp::ZERO,
                    size,
                    payload: encode_frame_chunk(self.seq, now, size),
                });
                self.seq += 1;
            }
            self.next_frame += self.profile.frame_interval;
        }
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        Some(self.next_frame)
    }
}

/// Receiving side: measures arrival delay and reports the worst delay of
/// each reporting interval back to the sender (an RTCP-receiver-report
/// stand-in).
pub struct VideoAppReceiver {
    flow: FlowId,
    report_interval: Duration,
    next_report: Timestamp,
    worst_delay: Duration,
    received: u64,
    pending: Vec<Packet>,
}

impl VideoAppReceiver {
    /// New receiver reporting every 250 ms.
    pub fn new() -> Self {
        VideoAppReceiver {
            flow: FlowId::PRIMARY,
            report_interval: Duration::from_millis(250),
            next_report: Timestamp::ZERO + Duration::from_millis(250),
            worst_delay: Duration::ZERO,
            received: 0,
            pending: Vec::new(),
        }
    }

    /// Tag outgoing reports with a flow id.
    pub fn set_flow(&mut self, flow: FlowId) {
        self.flow = flow;
    }

    /// Frames chunks received so far.
    pub fn received(&self) -> u64 {
        self.received
    }
}

impl Default for VideoAppReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl Endpoint for VideoAppReceiver {
    fn on_packet(&mut self, packet: Packet, now: Timestamp) {
        if let AppDecoded::Frame { sent_at } = decode(&packet.payload) {
            self.received += 1;
            let delay = now.saturating_since(sent_at);
            if delay > self.worst_delay {
                self.worst_delay = delay;
            }
        }
    }

    fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
        out.append(&mut self.pending);
        while self.next_report <= now {
            out.push(Packet {
                flow: self.flow,
                seq: self.received,
                sent_at: Timestamp::ZERO,
                size: REPORT_LEN as u32 + 23, // + L3/L4 overhead ≈ 40 B
                payload: encode_report(self.worst_delay, self.received),
            });
            self.worst_delay = Duration::ZERO;
            self.next_report += self.report_interval;
        }
    }

    fn next_wakeup(&self) -> Option<Timestamp> {
        Some(self.next_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn report(delay_ms: u64) -> Packet {
        Packet {
            flow: FlowId::PRIMARY,
            seq: 0,
            sent_at: Timestamp::ZERO,
            size: 40,
            payload: encode_report(Duration::from_millis(delay_ms), 0),
        }
    }

    #[test]
    fn sends_at_configured_rate() {
        let mut s = VideoAppSender::new(AppProfile::facetime());
        let mut bytes = 0u64;
        for ms in 0..2_000u64 {
            for p in s.poll(t(ms)) {
                bytes += p.size as u64;
            }
        }
        let rate = bytes as f64 * 8.0 / 2.0;
        // ~300 kbps start rate, ramping ≤ 15%/s: within [280k, 500k].
        assert!(rate > 280e3 && rate < 500e3, "observed rate {rate:.0} bps");
    }

    #[test]
    fn ramps_up_while_feedback_is_good() {
        let mut s = VideoAppSender::new(AppProfile::skype());
        let r0 = s.rate_bps();
        for sec in 0..20u64 {
            s.on_packet(report(50), t(sec * 1_000));
            let _ = s.poll(t(sec * 1_000));
        }
        assert!(s.rate_bps() > r0 * 2.0, "rate {} from {r0}", s.rate_bps());
        assert!(s.rate_bps() <= AppProfile::skype().max_rate_bps);
    }

    #[test]
    fn reacts_only_after_sustained_congestion() {
        let mut s = VideoAppSender::new(AppProfile::skype());
        let r0 = s.rate_bps();
        // 1 s of congestion: below the 3 s reaction time → no cut.
        s.on_packet(report(2_000), t(0));
        s.on_packet(report(2_000), t(1_000));
        assert!(s.rate_bps() >= r0);
        // Crossing the reaction time → multiplicative cut.
        s.on_packet(report(2_000), t(3_100));
        assert!((s.rate_bps() - r0 * 0.5).abs() < r0 * 0.01);
    }

    #[test]
    fn congestion_clears_on_good_report() {
        let mut s = VideoAppSender::new(AppProfile::skype());
        s.on_packet(report(2_000), t(0));
        s.on_packet(report(40), t(1_000)); // episode over
        s.on_packet(report(2_000), t(2_000)); // new episode starts at 2 s
        s.on_packet(report(2_000), t(4_000)); // only 2 s in → no cut
        assert!((s.rate_bps() - AppProfile::skype().start_rate_bps).abs() < 1.0);
    }

    #[test]
    fn rate_never_leaves_bounds() {
        let p = AppProfile::facetime();
        let mut s = VideoAppSender::new(p.clone());
        // Hammer with congestion for a minute.
        for sec in 0..60u64 {
            s.on_packet(report(5_000), t(sec * 1_000));
        }
        assert!(s.rate_bps() >= p.min_rate_bps);
        // Then good news for ten minutes.
        for sec in 60..660u64 {
            s.on_packet(report(10), t(sec * 1_000));
            let _ = s.poll(t(sec * 1_000));
        }
        assert!(s.rate_bps() <= p.max_rate_bps);
    }

    #[test]
    fn receiver_reports_worst_interval_delay() {
        let mut r = VideoAppReceiver::new();
        let frame = |sent_ms: u64, size: u32| Packet {
            flow: FlowId::PRIMARY,
            seq: 0,
            sent_at: Timestamp::ZERO,
            size,
            payload: encode_frame_chunk(0, t(sent_ms), size),
        };
        r.on_packet(frame(0, 500), t(100)); // 100 ms delay
        r.on_packet(frame(200, 500), t(220)); // 20 ms delay
        let reports = r.poll(t(250));
        assert_eq!(reports.len(), 1);
        match decode(&reports[0].payload) {
            AppDecoded::Report { max_delay } => {
                assert_eq!(max_delay, Duration::from_millis(100));
            }
            _ => panic!("expected report"),
        }
        // Next interval starts fresh.
        r.on_packet(frame(400, 500), t(410));
        let reports = r.poll(t(500));
        match decode(&reports[0].payload) {
            AppDecoded::Report { max_delay } => {
                assert_eq!(max_delay, Duration::from_millis(10));
            }
            _ => panic!("expected report"),
        }
    }

    #[test]
    fn frame_chunking_respects_mtu() {
        let mut profile = AppProfile::skype();
        profile.start_rate_bps = 4e6; // big frames → multiple chunks
        let mut s = VideoAppSender::new(profile);
        let pkts = s.poll(t(0));
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.size <= MTU_BYTES));
        assert!(pkts.iter().any(|p| p.size == MTU_BYTES));
    }
}
