//! LEDBAT (RFC 6817), the "background transport" delay-based controller
//! the paper evaluates via µTP (§5). LEDBAT drives the one-way queueing
//! delay toward a fixed `TARGET` (100 ms): the window grows while
//! measured queueing delay is below target and shrinks proportionally
//! when above.

use crate::transport::CongestionControl;
use sprout_trace::{Duration, Timestamp};

/// RFC 6817 target queueing delay.
const TARGET: Duration = Duration::from_millis(100);
/// Window gain (per RFC: at most 1 cwnd increase per RTT at GAIN = 1).
const GAIN: f64 = 1.0;
/// Base-delay history length (RFC: ~10 one-minute buckets; the emulated
/// runs are minutes long, one simple expanding minimum per bucket works).
const BASE_HISTORY: usize = 10;
/// Base-delay bucket width.
const BUCKET: Duration = Duration::from_secs(60);

/// LEDBAT congestion control.
#[derive(Clone, Debug)]
pub struct Ledbat {
    cwnd: f64,
    /// Rolling per-minute minima of one-way delay; the base delay is the
    /// minimum across them.
    base_history: Vec<Duration>,
    bucket_started: Option<Timestamp>,
    /// Most recent one-way delay sample.
    last_delay: Option<Duration>,
    now_hint: Timestamp,
}

impl Ledbat {
    /// New LEDBAT flow.
    pub fn new() -> Self {
        Ledbat {
            cwnd: 2.0,
            base_history: Vec::new(),
            bucket_started: None,
            last_delay: None,
            now_hint: Timestamp::ZERO,
        }
    }

    fn base_delay(&self) -> Option<Duration> {
        self.base_history.iter().copied().min()
    }

    /// Current queueing-delay estimate (last sample − base).
    pub fn queueing_delay(&self) -> Option<Duration> {
        match (self.last_delay, self.base_delay()) {
            (Some(d), Some(b)) => Some(d.saturating_sub(b)),
            _ => None,
        }
    }

    fn roll_bucket(&mut self, now: Timestamp) {
        match self.bucket_started {
            None => {
                self.bucket_started = Some(now);
                self.base_history.push(Duration::from_secs(3600));
            }
            Some(start) if now.saturating_since(start) >= BUCKET => {
                self.bucket_started = Some(now);
                self.base_history.push(Duration::from_secs(3600));
                if self.base_history.len() > BASE_HISTORY {
                    self.base_history.remove(0);
                }
            }
            _ => {}
        }
    }
}

impl Default for Ledbat {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Ledbat {
    fn on_one_way_delay(&mut self, delay: Duration) {
        self.roll_bucket(self.now_hint);
        if let Some(last) = self.base_history.last_mut() {
            if delay < *last {
                *last = delay;
            }
        }
        self.last_delay = Some(delay);
    }

    fn on_ack(&mut self, newly_acked: u64, _rtt: Duration, now: Timestamp) {
        self.now_hint = now;
        let Some(qd) = self.queueing_delay() else {
            return;
        };
        // RFC 6817: off_target ∈ (−∞, 1]; cwnd += GAIN·off_target·acked/cwnd.
        let off_target = (TARGET.as_secs_f64() - qd.as_secs_f64()) / TARGET.as_secs_f64();
        self.cwnd += GAIN * off_target * newly_acked as f64 / self.cwnd;
        self.cwnd = self.cwnd.max(1.0);
    }

    fn on_loss(&mut self, _now: Timestamp) {
        self.cwnd = (self.cwnd / 2.0).max(1.0);
    }

    fn on_timeout(&mut self, _now: Timestamp) {
        self.cwnd = 1.0;
    }

    fn window(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "ledbat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn grows_below_target_shrinks_above() {
        let mut l = Ledbat::new();
        // Base delay 20 ms; current 30 ms → queueing 10 ms « target.
        l.on_one_way_delay(ms(20));
        l.on_one_way_delay(ms(30));
        let w0 = l.window();
        l.on_ack(2, ms(60), t(0));
        assert!(l.window() > w0);
        // Now 250 ms one-way → queueing 230 ms > target → decrease.
        l.on_one_way_delay(ms(250));
        let w1 = l.window();
        l.on_ack(2, ms(500), t(1));
        assert!(l.window() < w1);
    }

    #[test]
    fn converges_near_target_delay() {
        // Feed a feedback loop where queueing delay is proportional to
        // cwnd (a crude bottleneck model): equilibrium should sit near
        // the 100 ms target.
        let mut l = Ledbat::new();
        l.on_one_way_delay(ms(20));
        let mut now = 0u64;
        for _ in 0..3_000 {
            let qd_ms = (l.window() * 10.0) as u64; // 10 ms per packet
            l.on_one_way_delay(ms(20 + qd_ms));
            l.on_ack(1, ms(40 + qd_ms), t(now));
            now += 20;
        }
        let qd = l.queueing_delay().unwrap();
        assert!(
            qd >= ms(70) && qd <= ms(130),
            "queueing delay {qd} should hover near 100 ms"
        );
    }

    #[test]
    fn base_delay_is_minimum_seen() {
        let mut l = Ledbat::new();
        l.on_one_way_delay(ms(80));
        l.on_one_way_delay(ms(25));
        l.on_one_way_delay(ms(60));
        assert_eq!(l.queueing_delay().unwrap(), ms(35));
    }

    #[test]
    fn loss_halves_window() {
        let mut l = Ledbat::new();
        l.on_one_way_delay(ms(20));
        for i in 0..50 {
            l.on_one_way_delay(ms(25));
            l.on_ack(2, ms(50), t(i));
        }
        let w = l.window();
        l.on_loss(t(100));
        assert!((l.window() - w / 2.0).abs() < 1e-9);
        l.on_timeout(t(101));
        assert_eq!(l.window(), 1.0);
    }
}
