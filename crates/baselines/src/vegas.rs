//! TCP Vegas (Brakmo & Peterson, SIGCOMM 1994): delay-based congestion
//! avoidance. Vegas compares the expected throughput (cwnd/BaseRTT) with
//! the actual (cwnd/RTT) and holds between α and β queued packets at the
//! bottleneck — the paper's low-delay reactive baseline (§5, Fig. 7).

use crate::transport::CongestionControl;
use sprout_trace::{Duration, Timestamp};

/// Vegas parameters (packets of backlog to maintain).
const ALPHA: f64 = 2.0;
const BETA: f64 = 4.0;
/// Slow-start exit threshold (packets of backlog).
const GAMMA: f64 = 1.0;

/// Vegas congestion control.
#[derive(Clone, Debug)]
pub struct Vegas {
    cwnd: f64,
    base_rtt: Option<Duration>,
    /// Smallest RTT seen during the current adjustment interval.
    interval_min_rtt: Option<Duration>,
    /// Segment count acked during the current interval.
    acked_in_interval: u64,
    /// The interval ends after a window's worth of acks.
    in_slow_start: bool,
    /// Slow start doubles every *other* RTT in Vegas.
    ss_toggle: bool,
}

impl Vegas {
    /// New Vegas flow.
    pub fn new() -> Self {
        Vegas {
            cwnd: 2.0,
            base_rtt: None,
            interval_min_rtt: None,
            acked_in_interval: 0,
            in_slow_start: true,
            ss_toggle: false,
        }
    }

    /// Estimated backlog `diff` in packets: cwnd · (RTT − BaseRTT) / RTT.
    fn backlog(&self, rtt: Duration) -> f64 {
        let base = match self.base_rtt {
            Some(b) => b.as_secs_f64(),
            None => return 0.0,
        };
        let rtt = rtt.as_secs_f64().max(1e-6);
        self.cwnd * (rtt - base) / rtt
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Vegas {
    fn on_ack(&mut self, newly_acked: u64, rtt: Duration, _now: Timestamp) {
        if rtt > Duration::ZERO {
            self.base_rtt = Some(match self.base_rtt {
                Some(b) => b.min(rtt),
                None => rtt,
            });
            self.interval_min_rtt = Some(match self.interval_min_rtt {
                Some(m) => m.min(rtt),
                None => rtt,
            });
        }
        self.acked_in_interval += newly_acked;
        // Evaluate once per RTT (a window's worth of acks).
        if (self.acked_in_interval as f64) < self.cwnd {
            return;
        }
        let rtt_for_eval = self.interval_min_rtt.unwrap_or(rtt);
        let diff = self.backlog(rtt_for_eval);
        if self.in_slow_start {
            if diff > GAMMA {
                self.in_slow_start = false;
            } else {
                // Double every other RTT.
                self.ss_toggle = !self.ss_toggle;
                if self.ss_toggle {
                    self.cwnd *= 2.0;
                }
            }
        } else if diff < ALPHA {
            self.cwnd += 1.0;
        } else if diff > BETA {
            self.cwnd = (self.cwnd - 1.0).max(2.0);
        }
        self.acked_in_interval = 0;
        self.interval_min_rtt = None;
    }

    fn on_loss(&mut self, _now: Timestamp) {
        self.cwnd = (self.cwnd * 0.75).max(2.0);
        self.in_slow_start = false;
    }

    fn on_timeout(&mut self, _now: Timestamp) {
        self.cwnd = 2.0;
        self.in_slow_start = true;
        self.acked_in_interval = 0;
    }

    fn window(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "vegas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Timestamp {
        Timestamp::ZERO
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// Feed one RTT's worth of acks at a fixed RTT.
    fn one_rtt(v: &mut Vegas, rtt: Duration) {
        let need = v.window() as u64 + 1;
        v.on_ack(need, rtt, t0());
    }

    #[test]
    fn grows_while_no_queueing() {
        let mut v = Vegas::new();
        // RTT stays at the propagation floor: backlog 0, window grows.
        for _ in 0..10 {
            one_rtt(&mut v, ms(40));
        }
        assert!(v.window() > 8.0, "got {}", v.window());
    }

    #[test]
    fn backs_off_when_queue_builds() {
        let mut v = Vegas::new();
        for _ in 0..8 {
            one_rtt(&mut v, ms(40));
        }
        let peak = v.window();
        // RTT doubles → large backlog estimate → decrease.
        for _ in 0..5 {
            one_rtt(&mut v, ms(120));
        }
        assert!(v.window() < peak, "{} < {peak}", v.window());
    }

    #[test]
    fn holds_steady_between_alpha_and_beta() {
        let mut v = Vegas::new();
        for _ in 0..10 {
            one_rtt(&mut v, ms(40));
        }
        v.in_slow_start = false;
        let w = v.window();
        // RTT such that backlog = cwnd·(rtt−base)/rtt ∈ (α, β): pick rtt
        // giving ≈3 packets of backlog: rtt = base/(1−3/w).
        let base = 0.040;
        let rtt = Duration::from_secs_f64(base / (1.0 - 3.0 / w));
        for _ in 0..5 {
            one_rtt(&mut v, rtt);
        }
        assert!(
            (v.window() - w).abs() < 1.01,
            "held near {w}: {}",
            v.window()
        );
    }

    #[test]
    fn loss_and_timeout_reduce_window() {
        let mut v = Vegas::new();
        for _ in 0..10 {
            one_rtt(&mut v, ms(40));
        }
        let w = v.window();
        v.on_loss(t0());
        assert!(v.window() < w);
        v.on_timeout(t0());
        assert_eq!(v.window(), 2.0);
    }
}
