//! Content-addressed on-disk artifact cache.
//!
//! Sprout's expensive precomputations — the forecast CDF tables (seconds
//! of dynamic programming at paper scale) and synthesized link traces
//! (minutes of virtual time at 1 ms steps) — are pure functions of their
//! input configuration. This crate gives them a shared persistence layer
//! so a second `reproduce` run skips the work entirely:
//!
//! * **Content addressing.** An artifact is stored under a file name
//!   derived from a 64-bit hash of its *full* key bytes (the serialized
//!   input configuration). The complete key is also stored inside the
//!   file and compared byte-for-byte on load, so a hash collision can
//!   never serve the wrong artifact.
//! * **Integrity.** Every file carries a magic tag, the artifact kind's
//!   schema version, and an FNV-1a checksum over key and payload.
//!   Corrupt, truncated, or version-mismatched files are treated as
//!   misses; the caller rebuilds and the fresh store overwrites them.
//! * **Quarantine.** A file that is *damaged* — bad magic, truncated,
//!   failed checksum — is additionally renamed aside to `<name>.corrupt`
//!   (and counted in [`CacheCounters::quarantined`]), so the evidence
//!   survives for post-mortems while the rebuilt entry takes the
//!   original name. Stale versions and key-hash collisions are healthy
//!   files that merely don't match; they stay put and read as plain
//!   misses.
//! * **Atomicity.** Stores write to a unique temp file and `rename` into
//!   place, so concurrent builders (threads or whole processes) racing
//!   on the same key are harmless — last writer wins with identical
//!   bytes, and readers never observe a partial file.
//! * **Configuration.** The cache root resolves, in order: programmatic
//!   override ([`set_dir`] / [`disable`]), the `SPROUT_CACHE_DIR`
//!   environment variable (empty, `0`, or `off` disables), then
//!   `./.sprout-cache` under the working directory (kept inside the
//!   checkout so CI can cache it and `git clean` can wipe it).
//!
//! Cached artifacts are byte-exact re-encodings of what the builder
//! produced (f32 bit patterns, integer timestamps), so results are
//! bit-identical whether the cache is cold, warm, or disabled.

#![warn(missing_docs)]

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic tag opening every cache file.
const MAGIC: &[u8; 8] = b"SPROUTAC";

/// Header length: magic(8) + version(4) + key_len(4) + payload_len(8) +
/// checksum(8).
const HEADER_LEN: usize = 32;

/// FNV-1a 64-bit over one byte stream, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(0x100_0000_01b3);
    }
    state
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Stable 64-bit fingerprint of a byte string (FNV-1a, the same function
/// the cache uses for file addressing). Frozen: recorded artifact keys
/// depend on it.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// How the cache root was overridden (None = no override in effect).
static OVERRIDE: Mutex<Option<RootOverride>> = Mutex::new(None);

/// Lock the override slot, recovering from poisoning. The slot holds a
/// plain `Option<RootOverride>` whose every mutation is a single
/// assignment, so a panic while the lock is held can never leave it in a
/// torn state — the poison flag carries no information here. Without
/// this, one panicking cell thread (watchdog timeouts, injected test
/// panics) would turn every later cache resolution in the process into a
/// `PoisonError` panic.
fn override_slot() -> std::sync::MutexGuard<'static, Option<RootOverride>> {
    OVERRIDE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[derive(Clone, Debug)]
enum RootOverride {
    Disabled,
    Dir(PathBuf),
}

/// Point the cache at an explicit directory (the `--cache-dir` flag).
/// Takes precedence over `SPROUT_CACHE_DIR` and the defaults.
pub fn set_dir(dir: impl Into<PathBuf>) {
    *override_slot() = Some(RootOverride::Dir(dir.into()));
}

/// Disable the cache entirely (the `--no-cache` flag): loads miss without
/// touching the filesystem and stores are dropped.
pub fn disable() {
    *override_slot() = Some(RootOverride::Disabled);
}

/// Clear any programmatic override, returning to environment/default
/// resolution (used by tests).
pub fn reset_override() {
    *override_slot() = None;
}

/// Poison the override mutex on purpose: lock it, then panic while the
/// guard is held. Only exists so tests (here and downstream) can prove
/// resolution survives poisoning.
#[doc(hidden)]
pub fn poison_override_lock_for_tests() {
    let _ = std::panic::catch_unwind(|| {
        let _guard = OVERRIDE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        panic!("poisoning the override lock on purpose");
    });
}

/// The directory artifacts are stored in, or `None` when the cache is
/// disabled. Resolved fresh on every call so overrides apply immediately.
pub fn resolved_dir() -> Option<PathBuf> {
    if let Some(over) = override_slot().clone() {
        return match over {
            RootOverride::Disabled => None,
            RootOverride::Dir(d) => Some(d),
        };
    }
    match std::env::var("SPROUT_CACHE_DIR") {
        Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => Some(PathBuf::from(".sprout-cache")),
    }
}

/// Monotonically increasing counters of one artifact kind's cache
/// traffic. Loads and stores attempted while the cache is disabled are
/// not counted (the kind is bypassed, not missing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that found nothing usable (absent, corrupt, wrong version,
    /// key mismatch).
    pub misses: u64,
    /// Artifacts written to disk.
    pub stores: u64,
    /// Damaged files renamed aside to `*.corrupt`. Every quarantine is
    /// also a miss (the caller rebuilds either way).
    pub quarantined: u64,
}

impl CacheCounters {
    /// Component-wise difference against an earlier snapshot.
    pub fn since(self, earlier: CacheCounters) -> CacheCounters {
        CacheCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stores: self.stores - earlier.stores,
            quarantined: self.quarantined - earlier.quarantined,
        }
    }
}

/// What a file-level load found. Only `Corrupt` triggers quarantine:
/// `Mismatch` files are healthy artifacts that legitimately don't serve
/// this key (stale schema version, key-hash collision).
enum LoadOutcome {
    /// No file under the key's name.
    Absent,
    /// A healthy file that doesn't match (version or key).
    Mismatch,
    /// A damaged file: bad magic, truncated, or failed checksum.
    Corrupt,
    /// The verified payload.
    Hit(Vec<u8>),
}

/// One kind of cached artifact (forecast tables, synthesized traces, …),
/// carrying its own schema version and traffic counters. Declare as a
/// `static`:
///
/// ```
/// use sprout_cache::ArtifactKind;
/// static TABLES: ArtifactKind = ArtifactKind::new("forecast-table", 1);
/// ```
///
/// Bump the version whenever the payload encoding *or* the semantics of
/// the builder change; old files then read as misses and are rebuilt.
#[derive(Debug)]
pub struct ArtifactKind {
    name: &'static str,
    version: u32,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    quarantined: AtomicU64,
}

impl ArtifactKind {
    /// Declare an artifact kind. `name` must be filesystem-safe
    /// (lowercase words and dashes).
    pub const fn new(name: &'static str, version: u32) -> Self {
        ArtifactKind {
            name,
            version,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        }
    }

    /// The kind's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current traffic counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Reset the counters to zero (tests, bench runs).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.stores.store(0, Ordering::Relaxed);
        self.quarantined.store(0, Ordering::Relaxed);
    }

    /// File path an artifact with `key` lives at, under `dir`.
    fn path_for(&self, dir: &std::path::Path, key: &[u8]) -> PathBuf {
        let hash = fnv1a(fnv1a(FNV_OFFSET, self.name.as_bytes()), key);
        dir.join(format!("{}-v{}-{hash:016x}.bin", self.name, self.version))
    }

    /// Load the artifact stored under `key`. Returns the payload only if
    /// the file exists, parses, matches this kind's version, stores the
    /// identical key, and passes its checksum. `None` when the cache is
    /// disabled (uncounted) or on any miss (counted). A *damaged* file
    /// (bad magic, truncation, checksum failure) is quarantined — renamed
    /// aside to `*.corrupt` — before the miss is reported.
    pub fn load(&self, key: &[u8]) -> Option<Vec<u8>> {
        let dir = resolved_dir()?;
        match self.try_load(&dir, key) {
            LoadOutcome::Hit(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            LoadOutcome::Corrupt => {
                self.quarantine_path(&self.path_for(&dir, key));
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            LoadOutcome::Absent | LoadOutcome::Mismatch => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn try_load(&self, dir: &std::path::Path, key: &[u8]) -> LoadOutcome {
        let Ok(mut file) = std::fs::File::open(self.path_for(dir, key)) else {
            return LoadOutcome::Absent;
        };
        let mut header = [0u8; HEADER_LEN];
        if file.read_exact(&mut header).is_err() {
            return LoadOutcome::Corrupt; // shorter than its own header
        }
        if &header[0..8] != MAGIC {
            return LoadOutcome::Corrupt;
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != self.version {
            // A healthy file from another schema generation — stale, not
            // damaged. Leave it alone.
            return LoadOutcome::Mismatch;
        }
        let key_len = u32::from_le_bytes(header[12..16].try_into().unwrap()) as usize;
        let payload_len = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(header[24..32].try_into().unwrap());
        if key_len != key.len() {
            // Hash collision with a different key: healthy file, wrong
            // occupant.
            return LoadOutcome::Mismatch;
        }
        let mut body = Vec::new();
        if file.read_to_end(&mut body).is_err() {
            return LoadOutcome::Corrupt;
        }
        if body.len() != key_len + payload_len {
            return LoadOutcome::Corrupt;
        }
        let (stored_key, payload) = body.split_at(key_len);
        if stored_key != key {
            return LoadOutcome::Mismatch;
        }
        if fnv1a(fnv1a(FNV_OFFSET, key), payload) != checksum {
            return LoadOutcome::Corrupt;
        }
        LoadOutcome::Hit(payload.to_vec())
    }

    /// Quarantine the entry stored under `key`: rename it aside to
    /// `*.corrupt` so a subsequent load misses (and a rebuild takes the
    /// original name) while the damaged bytes survive for inspection.
    /// For callers whose *payload decoding* fails after the file-level
    /// integrity checks passed — their corruption detector lives above
    /// this crate. Returns whether a file was actually moved aside.
    pub fn quarantine(&self, key: &[u8]) -> bool {
        let Some(dir) = resolved_dir() else {
            return false;
        };
        self.quarantine_path(&self.path_for(&dir, key))
    }

    /// Reclassify one already-counted hit as a miss: for callers whose
    /// payload *decoding* failed after [`Self::load`] reported success,
    /// so the traffic counters reflect what the caller actually got.
    pub fn demote_hit(&self) {
        self.hits.fetch_sub(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn quarantine_path(&self, path: &std::path::Path) -> bool {
        let mut aside = path.as_os_str().to_owned();
        aside.push(".corrupt");
        if std::fs::rename(path, &aside).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            // Racing quarantiners: someone else already moved it. Either
            // way the original name is free.
            false
        }
    }

    /// Store `payload` under `key`, atomically (temp file + rename).
    /// Best-effort: a transient IO failure is retried once, and
    /// persistent failures (or a disabled cache) return `false` without
    /// error — the artifact simply is not persisted.
    pub fn store(&self, key: &[u8], payload: &[u8]) -> bool {
        self.try_store(key, payload) || self.try_store(key, payload)
    }

    fn try_store(&self, key: &[u8], payload: &[u8]) -> bool {
        let Some(dir) = resolved_dir() else {
            return false;
        };
        if std::fs::create_dir_all(&dir).is_err() {
            return false;
        }
        let final_path = self.path_for(&dir, key);
        // Unique temp name per storer: pid + a process-wide counter.
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let temp_path = dir.join(format!(
            ".tmp-{}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
            final_path.file_name().unwrap().to_string_lossy()
        ));
        let checksum = fnv1a(fnv1a(FNV_OFFSET, key), payload);
        let write = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&temp_path)?;
            f.write_all(MAGIC)?;
            f.write_all(&self.version.to_le_bytes())?;
            f.write_all(&(key.len() as u32).to_le_bytes())?;
            f.write_all(&(payload.len() as u64).to_le_bytes())?;
            f.write_all(&checksum.to_le_bytes())?;
            f.write_all(key)?;
            f.write_all(payload)?;
            f.sync_all().ok(); // best-effort durability
            Ok(())
        })();
        if write.is_err() {
            let _ = std::fs::remove_file(&temp_path);
            return false;
        }
        match std::fs::rename(&temp_path, &final_path) {
            Ok(()) => {
                self.stores.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                let _ = std::fs::remove_file(&temp_path);
                false
            }
        }
    }
}

/// A little-endian byte encoder for building cache keys and payloads
/// with explicit, stable layouts.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(n),
        }
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f32`'s raw bits.
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Append an `f64`'s raw bits (NaN payloads round-trip exactly).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Append a `bool` as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.buf.push(v as u8);
        self
    }

    /// Append a length-prefixed string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// The accumulated bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A little-endian reader mirroring [`ByteWriter`]; every method returns
/// `None` on underrun so decoders degrade into cache misses.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f32` from raw bits.
    pub fn f32(&mut self) -> Option<f32> {
        Some(f32::from_bits(self.u32()?))
    }

    /// Read an `f64` from raw bits.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Read a `bool`; bytes other than 0/1 are a decode error.
    pub fn bool(&mut self) -> Option<bool> {
        match self.take(1)?[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// Serialize tests that mutate the process-global override.
    static LOCK: Mutex<()> = Mutex::new(());

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let d = std::env::temp_dir().join(format!(
            "sprout-cache-test-{}-{}-{tag}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trip_and_counters() {
        let _g = LOCK.lock().unwrap();
        set_dir(temp_dir("roundtrip"));
        static KIND: ArtifactKind = ArtifactKind::new("test-roundtrip", 1);
        KIND.reset_counters();
        assert_eq!(KIND.load(b"key"), None);
        assert!(KIND.store(b"key", b"payload bytes"));
        assert_eq!(KIND.load(b"key").as_deref(), Some(&b"payload bytes"[..]));
        assert_eq!(KIND.load(b"other"), None);
        let c = KIND.counters();
        assert_eq!((c.hits, c.misses, c.stores), (1, 2, 1));
        reset_override();
    }

    #[test]
    fn disabled_cache_bypasses_without_counting() {
        let _g = LOCK.lock().unwrap();
        disable();
        static KIND: ArtifactKind = ArtifactKind::new("test-disabled", 1);
        KIND.reset_counters();
        assert!(!KIND.store(b"k", b"v"));
        assert_eq!(KIND.load(b"k"), None);
        assert_eq!(KIND.counters(), CacheCounters::default());
        reset_override();
    }

    #[test]
    fn corrupt_file_is_quarantined_and_reads_as_a_miss() {
        let _g = LOCK.lock().unwrap();
        let dir = temp_dir("corrupt");
        set_dir(&dir);
        static KIND: ArtifactKind = ArtifactKind::new("test-corrupt", 1);
        KIND.reset_counters();
        assert!(KIND.store(b"k", b"good payload"));
        // Flip a payload byte on disk.
        let path = KIND.path_for(&dir, b"k");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, bytes).unwrap();
        assert_eq!(KIND.load(b"k"), None, "corrupt file must read as a miss");
        // The damaged bytes were moved aside, not destroyed.
        let mut aside = path.clone().into_os_string();
        aside.push(".corrupt");
        assert!(
            std::path::Path::new(&aside).exists(),
            "the damaged file must be renamed to *.corrupt"
        );
        assert!(!path.exists(), "the original name must be freed");
        assert_eq!(KIND.counters().quarantined, 1);
        // A fresh store reclaims the original name.
        assert!(KIND.store(b"k", b"good payload"));
        assert_eq!(KIND.load(b"k").as_deref(), Some(&b"good payload"[..]));
        reset_override();
    }

    #[test]
    fn explicit_quarantine_frees_the_entry() {
        let _g = LOCK.lock().unwrap();
        let dir = temp_dir("quarantine");
        set_dir(&dir);
        static KIND: ArtifactKind = ArtifactKind::new("test-quarantine", 1);
        KIND.reset_counters();
        assert!(KIND.store(b"k", b"looks fine at the file level"));
        // A caller whose payload decode failed pushes the entry aside.
        assert!(KIND.quarantine(b"k"));
        assert_eq!(KIND.load(b"k"), None);
        assert!(
            !KIND.quarantine(b"k"),
            "already quarantined: nothing to move"
        );
        assert_eq!(KIND.counters().quarantined, 1);
        reset_override();
    }

    #[test]
    fn stale_version_is_not_quarantined() {
        let _g = LOCK.lock().unwrap();
        let dir = temp_dir("stale-not-quarantined");
        set_dir(&dir);
        static V1: ArtifactKind = ArtifactKind::new("test-stale", 1);
        static V2: ArtifactKind = ArtifactKind::new("test-stale", 2);
        V2.reset_counters();
        assert!(V1.store(b"k", b"v1 payload"));
        let v2_path = V2.path_for(&dir, b"k");
        std::fs::copy(V1.path_for(&dir, b"k"), &v2_path).unwrap();
        assert_eq!(V2.load(b"k"), None);
        assert!(
            v2_path.exists(),
            "a healthy file of another version is a plain miss, not corruption"
        );
        assert_eq!(V2.counters().quarantined, 0);
        reset_override();
    }

    #[test]
    fn version_bump_invalidates() {
        let _g = LOCK.lock().unwrap();
        let dir = temp_dir("version");
        set_dir(&dir);
        static V1: ArtifactKind = ArtifactKind::new("test-version", 1);
        static V2: ArtifactKind = ArtifactKind::new("test-version", 2);
        assert!(V1.store(b"k", b"v1 payload"));
        // Same kind name at version 2 hashes to a different file; even if
        // a v1 file is copied onto the v2 path, the header version check
        // rejects it.
        assert_eq!(V2.load(b"k"), None);
        let v1_path = V1.path_for(&dir, b"k");
        let v2_path = V2.path_for(&dir, b"k");
        std::fs::copy(&v1_path, &v2_path).unwrap();
        assert_eq!(V2.load(b"k"), None, "stale version must not load");
        reset_override();
    }

    #[test]
    fn truncated_file_is_a_miss() {
        let _g = LOCK.lock().unwrap();
        let dir = temp_dir("truncated");
        set_dir(&dir);
        static KIND: ArtifactKind = ArtifactKind::new("test-truncated", 1);
        assert!(KIND.store(b"k", b"0123456789"));
        let path = KIND.path_for(&dir, b"k");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(KIND.load(b"k"), None);
        reset_override();
    }

    #[test]
    fn env_and_override_resolution() {
        let _g = LOCK.lock().unwrap();
        reset_override();
        // Whatever the environment says, an explicit override wins.
        set_dir("/tmp/explicit-cache-dir");
        assert_eq!(
            resolved_dir(),
            Some(PathBuf::from("/tmp/explicit-cache-dir"))
        );
        disable();
        assert_eq!(resolved_dir(), None);
        reset_override();
        // With no override, resolution follows the environment: a
        // disabling SPROUT_CACHE_DIR (empty/0/off) yields None, anything
        // else (including unset → ./.sprout-cache) yields a directory.
        let env_disabled = matches!(
            std::env::var("SPROUT_CACHE_DIR").as_deref(),
            Ok("") | Ok("0") | Ok("off") | Ok("OFF") | Ok("Off")
        );
        assert_eq!(resolved_dir().is_none(), env_disabled);
    }

    #[test]
    fn byte_writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.u32(7).u64(1 << 40).f32(1.5).str("hello");
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32(), Some(7));
        assert_eq!(r.u64(), Some(1 << 40));
        assert_eq!(r.f32(), Some(1.5));
        assert_eq!(r.u32(), Some(5));
        assert_eq!(r.remaining(), 5);
        assert_eq!(r.u64(), None, "underrun returns None");
    }

    #[test]
    fn f64_and_bool_round_trip_exactly() {
        let mut w = ByteWriter::new();
        w.f64(f64::NAN).f64(-0.0).bool(true).bool(false);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.f64().map(f64::to_bits), Some(f64::NAN.to_bits()));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.bool(), Some(false));
        assert_eq!(r.bool(), None);
        // Garbage bool bytes are decode errors, not values.
        let mut bad = ByteReader::new(&[7u8]);
        assert_eq!(bad.bool(), None);
    }

    #[test]
    fn fingerprint64_is_stable_and_input_sensitive() {
        assert_eq!(fingerprint64(b"abc"), fingerprint64(b"abc"));
        assert_ne!(fingerprint64(b"abc"), fingerprint64(b"abd"));
        // Frozen value: cell-result cache keys depend on this function.
        assert_eq!(fingerprint64(b""), FNV_OFFSET);
    }

    #[test]
    fn poisoned_override_still_resolves() {
        let _g = LOCK.lock().unwrap();
        set_dir("/tmp/before-poison");
        poison_override_lock_for_tests();
        // A long-running daemon keeps resolving and re-pointing the cache
        // after one worker thread panicked mid-configuration.
        assert_eq!(resolved_dir(), Some(PathBuf::from("/tmp/before-poison")));
        set_dir("/tmp/after-poison");
        assert_eq!(resolved_dir(), Some(PathBuf::from("/tmp/after-poison")));
        disable();
        assert_eq!(resolved_dir(), None);
        reset_override();
    }

    #[test]
    fn concurrent_stores_of_same_key_are_safe() {
        let _g = LOCK.lock().unwrap();
        set_dir(temp_dir("concurrent"));
        static KIND: ArtifactKind = ArtifactKind::new("test-concurrent", 1);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..20 {
                        assert!(KIND.store(b"shared", b"identical payload"));
                        if let Some(p) = KIND.load(b"shared") {
                            assert_eq!(p, b"identical payload");
                        }
                    }
                });
            }
        });
        assert_eq!(
            KIND.load(b"shared").as_deref(),
            Some(&b"identical payload"[..])
        );
        reset_override();
    }
}
