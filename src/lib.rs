//! # sprout-repro — a reproduction of Sprout (NSDI 2013)
//!
//! Umbrella crate for the workspace: re-exports the component crates and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! * [`sprout_core`] — the Sprout protocol (inference, forecasts, endpoints)
//! * [`sprout_trace`] — cellular link traces: format, synthesis, analysis
//! * [`sprout_sim`] — the Cellsim trace-driven network emulator
//! * [`sprout_baselines`] — TCP variants, app models, omniscient, Saturator
//! * [`sprout_tunnel`] — SproutTunnel flow isolation (§4.3)
//! * [`sprout_net`] — real-UDP driver for the sans-IO endpoints
//! * [`sprout_cache`] — content-addressed artifact cache (forecast
//!   tables, synthesized traces)
//!
//! See README.md for the guided tour and ARCHITECTURE.md for the
//! workspace layering, the experiment pipeline, and the cache-key
//! protocol.

pub use sprout_baselines;
pub use sprout_cache;
pub use sprout_core;
pub use sprout_net;
pub use sprout_sim;
pub use sprout_trace;
pub use sprout_tunnel;
