//! Property-based tests (proptest) on the core data structures and
//! protocol invariants.

use proptest::prelude::*;

use sprout_core::{IntervalSet, RateModel, SproutConfig, SproutHeader, WireForecast};
use sprout_sim::{CoDelConfig, CoDelQueue, DropTail, FlowId, Packet, Queue};
use sprout_trace::{Duration, Timestamp, Trace};

proptest! {
    /// Trace construction sorts arbitrary input and preserves every
    /// opportunity; serialization round-trips exactly.
    #[test]
    fn trace_roundtrip(mut ms in proptest::collection::vec(0u64..1_000_000, 0..300)) {
        let trace = Trace::from_millis(ms.clone());
        prop_assert_eq!(trace.len(), ms.len());
        ms.sort_unstable();
        let sorted: Vec<u64> = trace.opportunities().iter().map(|t| t.as_millis()).collect();
        prop_assert_eq!(sorted, ms);

        let mut buf = Vec::new();
        sprout_trace::write_trace(&trace, &mut buf).unwrap();
        let back = sprout_trace::read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// The wire header round-trips for arbitrary field values.
    #[test]
    fn wire_header_roundtrip(
        seq in any::<u64>(),
        throwaway in any::<u64>(),
        ttn_us in 0u32..10_000_000,
        sent_us in any::<u64>(),
        heartbeat in any::<bool>(),
        datagram in any::<bool>(),
        payload_len in 0u16..1_400,
        fc in proptest::option::of((any::<u64>(), any::<u32>(), proptest::array::uniform8(any::<u16>()))),
    ) {
        let header = SproutHeader {
            seq,
            throwaway,
            time_to_next: Duration::from_micros(ttn_us as u64),
            sent_at: Timestamp::from_micros(sent_us),
            heartbeat,
            datagram,
            forecast: fc.map(|(recv_or_lost_bytes, tick, cumulative_units)| WireForecast {
                recv_or_lost_bytes,
                tick,
                cumulative_units,
            }),
            payload_len,
        };
        let bytes = header.encode_with_padding();
        let back = SproutHeader::decode(&bytes).unwrap();
        prop_assert_eq!(back, header);
    }

    /// IntervalSet total length equals the length of the true union of
    /// the inserted ranges, for arbitrary overlapping inserts.
    #[test]
    fn interval_set_matches_naive_union(
        ranges in proptest::collection::vec((0u64..2_000, 1u64..300), 1..40)
    ) {
        let mut set = IntervalSet::new();
        let mut naive = vec![false; 4_096];
        for (start, len) in ranges {
            let end = start + len;
            set.insert(start, end);
            for cell in naive.iter_mut().take(end as usize).skip(start as usize) {
                *cell = true;
            }
        }
        let truth = naive.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(set.len_above(0), truth);
    }

    /// The Bayesian posterior stays a probability distribution under any
    /// interleaving of evolutions and (bounded) observations.
    #[test]
    fn posterior_remains_normalized(
        steps in proptest::collection::vec(proptest::option::of(0.0f64..50.0), 1..60)
    ) {
        let mut model = RateModel::new(SproutConfig::test_small());
        for obs in steps {
            model.evolve();
            if let Some(k) = obs {
                model.observe(k);
            }
            let sum: f64 = model.distribution().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
            prop_assert!(model.distribution().iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        }
    }

    /// DropTail never exceeds its byte capacity and conserves packets
    /// (delivered + dropped + queued == offered).
    #[test]
    fn droptail_conserves_packets(
        sizes in proptest::collection::vec(1u32..2_000, 1..200),
        cap in 1_000u64..20_000,
    ) {
        let mut q = DropTail::with_capacity_bytes(cap);
        let offered = sizes.len();
        for (i, size) in sizes.into_iter().enumerate() {
            q.enqueue(Packet::opaque(FlowId::PRIMARY, i as u64, size), Timestamp::ZERO);
            prop_assert!(q.bytes() <= cap);
        }
        let mut delivered = 0;
        while q.dequeue(Timestamp::ZERO).is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered + q.drops() as usize, offered);
    }

    /// CoDel conserves packets too: everything offered is either
    /// delivered or counted as dropped.
    #[test]
    fn codel_conserves_packets(
        gaps_ms in proptest::collection::vec(0u64..50, 1..200),
    ) {
        let mut q = CoDelQueue::new(CoDelConfig::default());
        let mut now = Timestamp::ZERO;
        let mut offered = 0;
        for (i, gap) in gaps_ms.iter().enumerate() {
            q.enqueue(Packet::opaque(FlowId::PRIMARY, i as u64, 1_500), now);
            offered += 1;
            now += Duration::from_millis(*gap);
            // Drain slowly: one dequeue per enqueue keeps a standing queue
            // when gaps are small.
            if i % 2 == 0 {
                let _ = q.dequeue(now);
            }
        }
        let mut delivered = offered - q.packets() - q.drops() as usize;
        while q.dequeue(now).is_some() {
            delivered += 1;
        }
        let _ = delivered;
        prop_assert_eq!(q.packets(), 0);
    }

    /// The self-inflicted-delay metric is never negative and respects the
    /// omniscient floor for arbitrary traces.
    #[test]
    fn omniscient_floor_is_sane(ms in proptest::collection::vec(0u64..60_000, 2..400)) {
        let trace = Trace::from_millis(ms);
        let p95 = sprout_sim::omniscient_p95_delay(
            &trace,
            Duration::from_millis(20),
            Timestamp::ZERO,
            Timestamp::ZERO + trace.duration(),
        );
        if let Some(p) = p95 {
            prop_assert!(p >= Duration::from_millis(20));
        }
    }
}
