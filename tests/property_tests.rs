//! Property-based tests (proptest) on the core data structures and
//! protocol invariants.

use proptest::prelude::*;

use sprout_core::{IntervalSet, RateModel, SproutConfig, SproutHeader, WireForecast};
use sprout_sim::{
    CoDelConfig, CoDelQueue, DirectedPath, DropTail, FlowId, LinkConfig, Packet, PathConfig, Queue,
    QueueConfig, TraceLink,
};
use sprout_trace::{Duration, Timestamp, Trace, MTU_BYTES};

proptest! {
    /// Trace construction sorts arbitrary input and preserves every
    /// opportunity; serialization round-trips exactly.
    #[test]
    fn trace_roundtrip(mut ms in proptest::collection::vec(0u64..1_000_000, 0..300)) {
        let trace = Trace::from_millis(ms.clone());
        prop_assert_eq!(trace.len(), ms.len());
        ms.sort_unstable();
        let sorted: Vec<u64> = trace.opportunities().iter().map(|t| t.as_millis()).collect();
        prop_assert_eq!(sorted, ms);

        let mut buf = Vec::new();
        sprout_trace::write_trace(&trace, &mut buf).unwrap();
        let back = sprout_trace::read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// The wire header round-trips for arbitrary field values.
    #[test]
    fn wire_header_roundtrip(
        seq in any::<u64>(),
        throwaway in any::<u64>(),
        ttn_us in 0u32..10_000_000,
        sent_us in any::<u64>(),
        heartbeat in any::<bool>(),
        datagram in any::<bool>(),
        payload_len in 0u16..1_400,
        fc in proptest::option::of((any::<u64>(), any::<u32>(), proptest::array::uniform8(any::<u16>()))),
    ) {
        let header = SproutHeader {
            seq,
            throwaway,
            time_to_next: Duration::from_micros(ttn_us as u64),
            sent_at: Timestamp::from_micros(sent_us),
            heartbeat,
            datagram,
            forecast: fc.map(|(recv_or_lost_bytes, tick, cumulative_units)| WireForecast {
                recv_or_lost_bytes,
                tick,
                cumulative_units,
            }),
            payload_len,
        };
        let bytes = header.encode_with_padding();
        let back = SproutHeader::decode(&bytes).unwrap();
        prop_assert_eq!(back, header);
    }

    /// IntervalSet total length equals the length of the true union of
    /// the inserted ranges, for arbitrary overlapping inserts.
    #[test]
    fn interval_set_matches_naive_union(
        ranges in proptest::collection::vec((0u64..2_000, 1u64..300), 1..40)
    ) {
        let mut set = IntervalSet::new();
        let mut naive = vec![false; 4_096];
        for (start, len) in ranges {
            let end = start + len;
            set.insert(start, end);
            for cell in naive.iter_mut().take(end as usize).skip(start as usize) {
                *cell = true;
            }
        }
        let truth = naive.iter().filter(|&&b| b).count() as u64;
        prop_assert_eq!(set.len_above(0), truth);
    }

    /// The Bayesian posterior stays a probability distribution under any
    /// interleaving of evolutions and (bounded) observations.
    #[test]
    fn posterior_remains_normalized(
        steps in proptest::collection::vec(proptest::option::of(0.0f64..50.0), 1..60)
    ) {
        let mut model = RateModel::new(SproutConfig::test_small());
        for obs in steps {
            model.evolve();
            if let Some(k) = obs {
                model.observe(k);
            }
            let sum: f64 = model.distribution().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
            prop_assert!(model.distribution().iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        }
    }

    /// DropTail never exceeds its byte capacity and conserves packets
    /// (delivered + dropped + queued == offered).
    #[test]
    fn droptail_conserves_packets(
        sizes in proptest::collection::vec(1u32..2_000, 1..200),
        cap in 1_000u64..20_000,
    ) {
        let mut q = DropTail::with_capacity_bytes(cap);
        let offered = sizes.len();
        for (i, size) in sizes.into_iter().enumerate() {
            q.enqueue(Packet::opaque(FlowId::PRIMARY, i as u64, size), Timestamp::ZERO);
            prop_assert!(q.bytes() <= cap);
        }
        let mut delivered = 0;
        while q.dequeue(Timestamp::ZERO).is_some() {
            delivered += 1;
        }
        prop_assert_eq!(delivered + q.drops() as usize, offered);
    }

    /// CoDel conserves packets too: everything offered is either
    /// delivered or counted as dropped.
    #[test]
    fn codel_conserves_packets(
        gaps_ms in proptest::collection::vec(0u64..50, 1..200),
    ) {
        let mut q = CoDelQueue::new(CoDelConfig::default());
        let mut now = Timestamp::ZERO;
        let mut offered = 0;
        for (i, gap) in gaps_ms.iter().enumerate() {
            q.enqueue(Packet::opaque(FlowId::PRIMARY, i as u64, 1_500), now);
            offered += 1;
            now += Duration::from_millis(*gap);
            // Drain slowly: one dequeue per enqueue keeps a standing queue
            // when gaps are small.
            if i % 2 == 0 {
                let _ = q.dequeue(now);
            }
        }
        let mut delivered = offered - q.packets() - q.drops() as usize;
        while q.dequeue(now).is_some() {
            delivered += 1;
        }
        let _ = delivered;
        prop_assert_eq!(q.packets(), 0);
    }

    /// The self-inflicted-delay metric is never negative and respects the
    /// omniscient floor for arbitrary traces.
    #[test]
    fn omniscient_floor_is_sane(ms in proptest::collection::vec(0u64..60_000, 2..400)) {
        let trace = Trace::from_millis(ms);
        let p95 = sprout_sim::omniscient_p95_delay(
            &trace,
            Duration::from_millis(20),
            Timestamp::ZERO,
            Timestamp::ZERO + trace.duration(),
        );
        if let Some(p) = p95 {
            prop_assert!(p >= Duration::from_millis(20));
        }
    }

    /// The propagation delay is a hard floor: for any trace and any
    /// prop-delay `d`, every packet a direction delivers took at least
    /// `d` end to end (an echoed round trip therefore takes ≥ 2·d).
    #[test]
    fn prop_delay_floors_every_delivery(
        gaps_ms in proptest::collection::vec(1u64..60, 5..120),
        d_ms in 1u64..200,
    ) {
        let mut at = 0u64;
        let ops: Vec<u64> = gaps_ms.iter().map(|g| { at += g; at }).collect();
        let horizon = at + d_ms + 1;
        let d = Duration::from_millis(d_ms);
        let mut path = DirectedPath::new(
            PathConfig::standard(Trace::from_millis(ops)).with_prop_delay(d),
        );
        for seq in 0..60u64 {
            path.send(Packet::opaque(FlowId::PRIMARY, seq, 1_200), Timestamp::from_millis(seq * 7));
        }
        path.advance(Timestamp::from_millis(horizon));
        for rec in path.metrics().records() {
            prop_assert!(
                rec.delivered_at.saturating_since(rec.sent_at) >= d,
                "delivery beat the {d} propagation floor"
            );
        }
    }

    /// Changing the propagation delay translates the omniscient delay
    /// floor by *exactly* the difference, for any trace: the floor's
    /// delay function is the gap ramp shifted up by the prop delay.
    #[test]
    fn omniscient_floor_shifts_by_exactly_the_prop_delta(
        ms in proptest::collection::vec(1u64..30_000, 2..200),
        d1_ms in 0u64..150,
        d2_ms in 0u64..150,
    ) {
        let trace = Trace::from_millis(ms);
        let window_end = Timestamp::ZERO + trace.duration() + Duration::from_millis(1);
        let floor = |d_ms: u64| sprout_sim::omniscient_p95_delay(
            &trace,
            Duration::from_millis(d_ms),
            Timestamp::ZERO,
            window_end,
        ).expect("non-empty trace has a floor");
        let (p1, p2) = (floor(d1_ms), floor(d2_ms));
        prop_assert_eq!(
            p1.as_micros() as i64 - p2.as_micros() as i64,
            (d1_ms as i64 - d2_ms as i64) * 1_000
        );
    }

    /// A byte-capped DropTail link never holds more than the cap (plus
    /// at most one partially-served packet's remainder), and every
    /// offered packet is accounted for: delivered, dropped by the cap,
    /// or still queued.
    #[test]
    fn droptail_bytes_cap_bounds_the_link_queue(
        sizes in proptest::collection::vec(20u32..1_500, 1..150),
        cap in 2_000u64..30_000,
        gap_ms in 1u64..20,
    ) {
        let trace = Trace::from_millis((1..=400u64).map(|i| i * gap_ms));
        let mut link = TraceLink::new(LinkConfig {
            queue: QueueConfig::DropTailBytes(cap),
            ..LinkConfig::standard(trace)
        });
        let offered = sizes.len() as u64;
        let mut delivered = 0u64;
        for (i, size) in sizes.into_iter().enumerate() {
            let now = Timestamp::from_millis(i as u64);
            link.ingress(Packet::opaque(FlowId::PRIMARY, i as u64, size), now);
            delivered += link.service(now).len() as u64;
            // The queue proper respects the cap exactly; the link may
            // additionally hold the unsent remainder of the one packet
            // in service (< MTU).
            prop_assert!(
                link.queued_bytes() <= cap + MTU_BYTES as u64,
                "queued {} exceeds cap {cap} + one MTU",
                link.queued_bytes()
            );
        }
        delivered += link.service(Timestamp::from_millis(500 * gap_ms)).len() as u64;
        // Every offered packet is delivered, capped, or still queued.
        prop_assert_eq!(
            delivered + link.queue_drops() + link.queued_packets() as u64,
            offered
        );
    }
}
