//! Integration tests for SproutTunnel (§4.3/§5.7) across crates.

use sprout_baselines::{
    AppProfile, Cubic, TcpReceiver, TcpSender, VideoAppReceiver, VideoAppSender,
};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{FlowId, MuxEndpoint, PathConfig, Simulation};
use sprout_trace::{Duration, NetProfile, Timestamp};
use sprout_tunnel::{TunnelEndpoint, TunnelHost};

const CUBIC: FlowId = FlowId(1);
const SKYPE: FlowId = FlowId(2);

fn hosts(cfg: &SproutConfig) -> (TunnelHost, TunnelHost) {
    let mut a = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new_ewma(cfg.clone())));
    a.add_client(CUBIC, Box::new(TcpSender::new(Box::new(Cubic::new()))));
    a.add_client(SKYPE, Box::new(VideoAppSender::new(AppProfile::skype())));
    let mut b = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new_ewma(cfg.clone())));
    b.add_client(CUBIC, Box::new(TcpReceiver::new()));
    b.add_client(SKYPE, Box::new(VideoAppReceiver::new()));
    (a, b)
}

#[test]
fn tunnel_isolates_interactive_flow_from_bulk() {
    let secs = 90;
    let down = NetProfile::VerizonLteDown.generate(Duration::from_secs(secs), 31);
    let up = NetProfile::VerizonLteUp.generate(Duration::from_secs(secs), 32);
    let cfg = SproutConfig::test_small();
    let (from, to) = (Timestamp::from_secs(20), Timestamp::from_secs(secs));

    // Direct: both flows share the carrier queue.
    let mut a = MuxEndpoint::new();
    a.add(CUBIC, Box::new(TcpSender::new(Box::new(Cubic::new()))));
    a.add(SKYPE, Box::new(VideoAppSender::new(AppProfile::skype())));
    let mut b = MuxEndpoint::new();
    b.add(CUBIC, Box::new(TcpReceiver::new()));
    b.add(SKYPE, Box::new(VideoAppReceiver::new()));
    let mut direct = Simulation::new(
        a,
        b,
        PathConfig::standard(down.clone()),
        PathConfig::standard(up.clone()),
    );
    direct.run_until(Timestamp::from_secs(secs));
    let skype_direct_delay = direct
        .ab_metrics()
        .flow_p95_delay(SKYPE, from, to)
        .expect("skype packets flowed");

    // Tunneled.
    let (a, b) = hosts(&cfg);
    let mut tunneled = Simulation::new(a, b, PathConfig::standard(down), PathConfig::standard(up));
    tunneled.run_until(Timestamp::from_secs(secs));
    let m = tunneled.b.deliveries();
    let skype_tunnel_delay = m.flow_p95_delay(SKYPE, from, to).expect("skype via tunnel");
    let cubic_tunnel_kbps = m.flow_throughput_kbps(CUBIC, from, to);
    let skype_tunnel_kbps = m.flow_throughput_kbps(SKYPE, from, to);

    // §5.7's claim: the tunnel slashes the interactive flow's delay.
    assert!(
        skype_tunnel_delay.as_micros() * 3 < skype_direct_delay.as_micros(),
        "tunnel must isolate skype: direct {skype_direct_delay}, tunneled {skype_tunnel_delay}"
    );
    // Both flows still make progress inside the tunnel.
    assert!(cubic_tunnel_kbps > 100.0, "cubic got {cubic_tunnel_kbps}");
    assert!(skype_tunnel_kbps > 50.0, "skype got {skype_tunnel_kbps}");
}

#[test]
fn tunnel_does_not_reorder_within_a_flow() {
    // Per-flow FIFO queues + in-order Sprout datagrams over a loss-free
    // link: client packets of one flow must arrive in order.
    use sprout_sim::{Endpoint, Packet};
    struct Burst {
        sent: u64,
    }
    impl Endpoint for Burst {
        fn on_packet(&mut self, _p: Packet, _n: Timestamp) {}
        fn poll_into(&mut self, now: Timestamp, out: &mut Vec<Packet>) {
            // 4 packets per poll for the first second.
            if now <= Timestamp::from_secs(1) && self.sent < 200 {
                for _ in 0..4 {
                    out.push(Packet::opaque(FlowId(9), self.sent, 300));
                    self.sent += 1;
                }
            }
        }
        fn next_wakeup(&self) -> Option<Timestamp> {
            Some(Timestamp::from_millis(20))
        }
    }

    let cfg = SproutConfig::test_small();
    let mut a = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new_ewma(cfg.clone())));
    a.add_client(FlowId(9), Box::new(Burst { sent: 0 }));
    let b = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new_ewma(cfg)));
    let fast = || sprout_trace::Trace::from_millis((0..20_000).map(|i| i * 2));
    let mut sim = Simulation::new(
        a,
        b,
        PathConfig::standard(fast()),
        PathConfig::standard(fast()),
    );
    sim.run_until(Timestamp::from_secs(20));
    let records = sim.b.deliveries().records();
    assert!(records.len() > 100, "burst must arrive: {}", records.len());
    // MetricsCollector stores in delivery order; packets' seq are encoded
    // in the tunnel encapsulation and surfaced via Packet::seq → verify
    // monotone delivery order per flow using the record log order.
    // (DeliveryRecord does not carry seq; rely on the tunnel's own stats.)
    assert_eq!(sim.b.stats().delivered as usize, records.len());
}
