//! Cross-crate integration tests: the paper's headline claims, asserted
//! as invariants on short deterministic runs. They use the paper's
//! full-scale Sprout configuration; the forecast tables build once per
//! test binary (a few seconds) and are shared through the global cache.

use sprout_baselines::{Cubic, TcpReceiver, TcpSender};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{direction_stats, PathConfig, Simulation};
use sprout_trace::{Duration, LinkModelParams, LinkSimulator, NetProfile, Timestamp, Trace};

/// A steady Poisson 400-packet/s link for 60 s (Poisson arrivals, not a
/// metronome). 400 pps ≈ 4.8 Mbps is the regime where Sprout's queue
/// stays backlogged enough for full-tick observations; at very low steady
/// rates the cautious forecast deliberately underfills (see
/// EXPERIMENTS.md, known limitations).
fn steady_link() -> Trace {
    let params = LinkModelParams {
        mean_rate_pps: 400.0,
        max_rate_pps: 1000.0,
        sigma: 2.0,
        mean_reversion: 50.0,
        outage_entry_rate: 0.0,
        outage_escape_rate: 1.0,
    };
    LinkSimulator::new(params, 1234).generate(Duration::from_secs(60))
}

fn sprout_pair(cfg: &SproutConfig) -> (SproutEndpoint, SproutEndpoint) {
    let mut a = SproutEndpoint::new(cfg.clone());
    a.set_saturating();
    (a, SproutEndpoint::new(cfg.clone()))
}

#[test]
fn sprout_fills_a_steady_link_with_low_delay() {
    let cfg = SproutConfig::paper();
    let (a, b) = sprout_pair(&cfg);
    let mut sim = Simulation::new(
        a,
        b,
        PathConfig::standard(steady_link()),
        PathConfig::standard(steady_link()),
    );
    sim.run_until(Timestamp::from_secs(60));
    let stats = direction_stats(
        sim.ab_path(),
        Timestamp::from_secs(10),
        Timestamp::from_secs(60),
    );
    assert!(
        stats.utilization > 0.85,
        "sprout should fill a steady link: util {}",
        stats.utilization
    );
    let si = stats.self_inflicted.unwrap();
    assert!(
        si < Duration::from_millis(150),
        "self-inflicted delay should stay near the 100 ms target: {si}"
    );
}

#[test]
fn sprout_beats_cubic_on_delay_by_an_order_of_magnitude() {
    // The paper's central comparison, on a shared variable link.
    let down = NetProfile::TmobileUmtsDown.generate(Duration::from_secs(90), 3);
    let up = NetProfile::TmobileUmtsUp.generate(Duration::from_secs(90), 4);
    let cfg = SproutConfig::paper();
    let (a, b) = sprout_pair(&cfg);
    let mut sprout_sim = Simulation::new(
        a,
        b,
        PathConfig::standard(down.clone()),
        PathConfig::standard(up.clone()),
    );
    sprout_sim.run_until(Timestamp::from_secs(90));
    let sprout = direction_stats(
        sprout_sim.ab_path(),
        Timestamp::from_secs(20),
        Timestamp::from_secs(90),
    );

    let mut cubic_sim = Simulation::new(
        TcpSender::new(Box::new(Cubic::new())),
        TcpReceiver::new(),
        PathConfig::standard(down),
        PathConfig::standard(up),
    );
    cubic_sim.run_until(Timestamp::from_secs(90));
    let cubic = direction_stats(
        cubic_sim.ab_path(),
        Timestamp::from_secs(20),
        Timestamp::from_secs(90),
    );

    let (s_delay, c_delay) = (
        sprout.self_inflicted.unwrap(),
        cubic.self_inflicted.unwrap(),
    );
    // Over a single 90 s window the gap is a small multiple; over the
    // paper's 17-minute traces it compounds to 79× (see `reproduce fig7`).
    assert!(
        c_delay.as_micros() > 3 * s_delay.as_micros().max(1),
        "cubic bufferbloat must dwarf sprout's delay: sprout {s_delay}, cubic {c_delay}"
    );
    assert!(
        c_delay > Duration::from_secs(1),
        "cubic should build a substantial standing queue: {c_delay}"
    );
    // Cubic wastes some capacity re-probing after the trace's outages,
    // but still runs the link far harder than it should for its delay.
    assert!(
        cubic.utilization > 0.6,
        "cubic fills the pipe: {}",
        cubic.utilization
    );
    assert!(sprout.throughput_kbps > 0.1 * cubic.throughput_kbps);
}

#[test]
fn sprout_survives_ten_percent_loss() {
    // §5.6: Sprout does not interpret loss as congestion; throughput
    // degrades roughly with the lost fraction, not collapse.
    let cfg = SproutConfig::paper();
    let run = |loss: f64| {
        let (a, b) = sprout_pair(&cfg);
        let mut ab = PathConfig::standard(steady_link());
        ab.link.loss_rate = loss;
        ab.link.loss_seed = 7;
        let mut sim = Simulation::new(a, b, ab, PathConfig::standard(steady_link()));
        sim.run_until(Timestamp::from_secs(60));
        direction_stats(
            sim.ab_path(),
            Timestamp::from_secs(10),
            Timestamp::from_secs(60),
        )
    };
    let clean = run(0.0);
    let lossy = run(0.10);
    assert!(
        lossy.throughput_kbps > 0.4 * clean.throughput_kbps,
        "10% loss must not collapse throughput: {} vs {}",
        lossy.throughput_kbps,
        clean.throughput_kbps
    );
    assert!(
        lossy.self_inflicted.unwrap() < Duration::from_millis(300),
        "delay stays controlled under loss"
    );
}

#[test]
fn ewma_variant_trades_delay_for_throughput() {
    // §5.3: Sprout-EWMA ≥ Sprout in throughput, Sprout ≤ EWMA in delay.
    let down = NetProfile::VerizonLteDown.generate(Duration::from_secs(90), 11);
    let up = NetProfile::VerizonLteUp.generate(Duration::from_secs(90), 12);
    let cfg = SproutConfig::paper();

    let (a, b) = sprout_pair(&cfg);
    let mut sim = Simulation::new(
        a,
        b,
        PathConfig::standard(down.clone()),
        PathConfig::standard(up.clone()),
    );
    sim.run_until(Timestamp::from_secs(90));
    let sprout = direction_stats(
        sim.ab_path(),
        Timestamp::from_secs(20),
        Timestamp::from_secs(90),
    );

    let mut a = SproutEndpoint::new_ewma(cfg.clone());
    a.set_saturating();
    let b = SproutEndpoint::new_ewma(cfg.clone());
    let mut sim = Simulation::new(a, b, PathConfig::standard(down), PathConfig::standard(up));
    sim.run_until(Timestamp::from_secs(90));
    let ewma = direction_stats(
        sim.ab_path(),
        Timestamp::from_secs(20),
        Timestamp::from_secs(90),
    );

    assert!(
        ewma.throughput_kbps >= sprout.throughput_kbps * 0.95,
        "EWMA should not trail Sprout in throughput: {} vs {}",
        ewma.throughput_kbps,
        sprout.throughput_kbps
    );
    assert!(
        sprout.self_inflicted.unwrap() <= ewma.self_inflicted.unwrap(),
        "Sprout's cautious forecast should yield lower delay"
    );
}

#[test]
fn runs_are_deterministic() {
    // Identical seeds → bit-identical metrics (the whole workspace is
    // virtual-time and seeded).
    let run = || {
        let down = NetProfile::AttLteUp.generate(Duration::from_secs(30), 99);
        let up = NetProfile::AttLteDown.generate(Duration::from_secs(30), 98);
        let cfg = SproutConfig::paper();
        let (a, b) = sprout_pair(&cfg);
        let mut sim = Simulation::new(a, b, PathConfig::standard(down), PathConfig::standard(up));
        sim.run_until(Timestamp::from_secs(30));
        (
            sim.ab_metrics().records().len(),
            sim.ab_metrics()
                .delivered_bytes(Timestamp::ZERO, Timestamp::from_secs(30), None),
        )
    };
    assert_eq!(run(), run());
}
