//! Artifact-cache integration: cached artifacts must be bit-identical to
//! fresh builds, corruption and version bumps must invalidate cleanly,
//! and concurrent first builds must not duplicate work or corrupt state.
//!
//! Every test redirects the process-global cache root, so they all
//! funnel through one mutex — `cargo test` runs tests of one binary in
//! parallel, and two tests swapping the root under each other would
//! race.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use sprout_bench::{sweep_to_json, ScenarioMatrix, Scheme, SweepEngine};
use sprout_core::{ForecastTables, SproutConfig};
use sprout_trace::{Duration, NetProfile};

fn cache_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn fresh_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sprout-cache-it-{}-{}-{tag}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A tiny but non-trivial sweep (2 schemes × 1 link, 20 virtual seconds).
fn tiny_matrix() -> ScenarioMatrix {
    ScenarioMatrix::builder("cache-it")
        .schemes([Scheme::SproutEwma, Scheme::Cubic])
        .links([NetProfile::TmobileUmtsDown])
        .timing(Duration::from_secs(20), Duration::from_secs(4))
        .build()
}

fn run_tiny_sweep(seed: u64) -> String {
    let m = tiny_matrix();
    let results = SweepEngine::new(seed).with_threads(2).run(&m);
    sweep_to_json(m.name(), seed, &results)
}

#[test]
fn sweep_json_is_bit_identical_cold_warm_and_disabled() {
    let _g = cache_lock().lock().unwrap();
    let dir = fresh_dir("sweep");

    sprout_cache::set_dir(&dir);
    let cold = run_tiny_sweep(31);
    let warm = run_tiny_sweep(31);
    sprout_cache::disable();
    let disabled = run_tiny_sweep(31);
    sprout_cache::reset_override();

    assert_eq!(cold, warm, "warm cache changed the sweep output");
    assert_eq!(cold, disabled, "disabling the cache changed the output");
    // The cold run populated the trace artifacts this matrix needs.
    assert!(
        std::fs::read_dir(&dir).unwrap().count() > 0,
        "cold run stored nothing"
    );
}

#[test]
fn cached_tables_are_bit_identical_to_fresh_build() {
    let _g = cache_lock().lock().unwrap();
    let dir = fresh_dir("tables");
    let cfg = SproutConfig {
        num_bins: 48,
        max_rate_pps: 300.0,
        sigma: 120.0,
        count_max: 192,
        ..SproutConfig::test_small()
    };

    sprout_cache::set_dir(&dir);
    let built = ForecastTables::load_or_build(&cfg); // cold: builds + stores
    let cached = ForecastTables::load_or_build(&cfg); // warm: decodes
    sprout_cache::reset_override();

    assert_eq!(
        built.to_bytes(),
        cached.to_bytes(),
        "cached tables must round-trip bit-exactly"
    );
    let c = sprout_core::table_cache_counters();
    assert!(c.hits >= 1, "second load_or_build must hit: {c:?}");
}

#[test]
fn cached_traces_are_bit_identical_to_fresh_synthesis() {
    let _g = cache_lock().lock().unwrap();
    let dir = fresh_dir("traces");
    let duration = Duration::from_secs(15);

    sprout_cache::disable();
    let fresh = NetProfile::AttLteUp.generate(duration, 77);
    sprout_cache::set_dir(&dir);
    let stored = NetProfile::AttLteUp.generate(duration, 77); // cold: stores
    let cached = NetProfile::AttLteUp.generate(duration, 77); // warm: decodes
    sprout_cache::reset_override();

    assert_eq!(fresh, stored);
    assert_eq!(fresh, cached);
}

#[test]
fn corrupt_cache_files_are_rebuilt_transparently() {
    let _g = cache_lock().lock().unwrap();
    let dir = fresh_dir("corrupt");
    let duration = Duration::from_secs(10);

    sprout_cache::set_dir(&dir);
    let original = NetProfile::Verizon3gDown.generate(duration, 5);
    // Vandalize every stored artifact.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let mut bytes = std::fs::read(&path).unwrap();
        for b in bytes.iter_mut().skip(8) {
            *b ^= 0xa5;
        }
        std::fs::write(&path, bytes).unwrap();
    }
    let rebuilt = NetProfile::Verizon3gDown.generate(duration, 5);
    sprout_cache::reset_override();

    assert_eq!(original, rebuilt, "corruption must rebuild, not garble");
}

#[test]
fn truncated_table_artifact_is_rebuilt() {
    let _g = cache_lock().lock().unwrap();
    let dir = fresh_dir("truncate");
    let cfg = SproutConfig {
        num_bins: 32,
        count_max: 128,
        ..SproutConfig::test_small()
    };

    sprout_cache::set_dir(&dir);
    let original = ForecastTables::load_or_build(&cfg);
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    }
    let rebuilt = ForecastTables::load_or_build(&cfg);
    sprout_cache::reset_override();

    assert_eq!(original.to_bytes(), rebuilt.to_bytes());
}

#[test]
fn concurrent_first_builds_share_one_table() {
    let _g = cache_lock().lock().unwrap();
    let dir = fresh_dir("concurrent");
    // A geometry no other test uses, so this process has no in-memory
    // entry yet: the per-key OnceLock must hand every thread one Arc.
    let cfg = SproutConfig {
        num_bins: 56,
        max_rate_pps: 280.0,
        count_max: 160,
        ..SproutConfig::test_small()
    };

    sprout_cache::set_dir(&dir);
    let tables: Vec<Arc<ForecastTables>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| s.spawn(|| ForecastTables::get(&cfg)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    sprout_cache::reset_override();

    for t in &tables[1..] {
        assert!(
            Arc::ptr_eq(&tables[0], t),
            "concurrent first builds must share one instance"
        );
    }
}
