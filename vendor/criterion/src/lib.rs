//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the `Criterion`/`Bencher` API surface and the
//! `criterion_group!`/`criterion_main!` macros the workspace's bench
//! targets use, backed by a plain wall-clock timing loop. No statistics,
//! no HTML reports — enough to compile and to print per-iteration times.

use std::time::{Duration, Instant};

/// Re-export for code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!("bench {name:48} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Define a benchmark group (both the simple and `name/config/targets`
/// forms of the upstream macro).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
