//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`,
//! integer/float range strategies, tuple strategies, and the
//! `collection::vec`, `option::of`, and `array::uniform8` combinators.
//! Cases are generated from a fixed-seed RNG (no shrinking, no failure
//! persistence); each property runs [`NUM_CASES`] times.

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Cases generated per property.
pub const NUM_CASES: usize = 64;

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-property RNG (seeded from the property name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<f64>()
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_uint!(u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.rng().gen_range(self.len.clone())
            };
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy for `Option<S::Value>` (None 25% of the time, as upstream).
    pub struct OptionStrategy<S>(S);

    /// `of(inner)` — generates `Some` 75% of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng().gen::<f64>() < 0.25 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; 8]`.
    pub struct Uniform8<S>(S);

    /// Eight independent draws of `inner`.
    pub fn uniform8<S: Strategy>(inner: S) -> Uniform8<S> {
        Uniform8(inner)
    }

    impl<S: Strategy> Strategy for Uniform8<S>
    where
        S::Value: Default + Copy,
    {
        type Value = [S::Value; 8];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let mut out = [S::Value::default(); 8];
            for slot in &mut out {
                *slot = self.0.generate(rng);
            }
            out
        }
    }
}

/// The items test modules conventionally glob-import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Assert inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "property assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "property assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "property assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Define property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    let result = (|| -> ::std::result::Result<(), String> {
                        $(let $pat = $crate::Strategy::generate(&$strat, &mut __rng);)*
                        $body
                        Ok(())
                    })();
                    if let Err(msg) = result {
                        panic!("{} failed at case {}: {}", stringify!($name), __case, msg);
                    }
                }
            }
        )*
    };
}
