//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the small API subset it actually uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`/`gen_range`. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the upstream ChaCha-based `StdRng`, but every consumer
//! in this workspace only requires determinism in the seed, which holds.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard the half-open invariant against rounding.
        if v >= self.end {
            self.start
        } else {
            v.max(self.start)
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is
                // negligible for the spans used here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u16, u32, u64, usize);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (offline stand-in for the
    /// upstream `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_unit_interval_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }
}
