//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the API subset it uses: [`Bytes`] (cheaply cloneable immutable buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`]/[`BufMut`] cursor
//! traits with the little-endian accessors the wire formats need.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer (a view into shared storage).
///
/// Backed by `Arc<Vec<u8>>` rather than `Arc<[u8]>` so that freezing a
/// built buffer ([`BytesMut::freeze`], `From<Vec<u8>>`) moves the vector
/// behind the `Arc` instead of re-allocating and copying its contents —
/// packet construction is on the emulator's per-packet hot path.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// A buffer viewing a static slice (copied once; the upstream crate
    /// borrows it, but consumers only rely on value semantics).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of this buffer (shares storage).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Mutable access to the viewed bytes, available only when this
    /// handle is the storage's sole owner (no outstanding clones). Lets
    /// owners patch an already-encoded buffer in place instead of
    /// copying it out and re-allocating.
    pub fn try_mut(&mut self) -> Option<&mut [u8]> {
        let (start, end) = (self.start, self.end);
        Arc::get_mut(&mut self.data).map(|d| &mut d[start..end])
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

/// A growable byte buffer used to build wire messages.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Resize, filling with `fill`.
    pub fn resize(&mut self, new_len: usize, fill: u8) {
        self.vec.resize(new_len, fill)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.vec.extend_from_slice(data)
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte source (little-endian accessors consume from
/// the front).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len());
        self.start += n;
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, data: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v])
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes())
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes())
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes())
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u64_le(0x0102_0304_0506_0708);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_buf_consumes_from_front() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(b.get_u8(), 1);
        assert_eq!(b.get_u8(), 2);
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.as_slice(), &[3, 4]);
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![9; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 1000);
    }

    #[test]
    fn try_mut_only_when_unique() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        assert!(a.try_mut().is_none(), "shared storage must refuse");
        drop(b);
        a.try_mut().expect("unique storage")[1] = 9;
        assert_eq!(a.as_slice(), &[1, 9, 3, 4]);
    }

    #[test]
    fn try_mut_respects_subview_bounds() {
        let mut a = Bytes::from(vec![1, 2, 3, 4, 5]).slice(1..4);
        let m = a.try_mut().expect("unique storage");
        assert_eq!(m.len(), 3);
        m[0] = 9;
        assert_eq!(a.as_slice(), &[9, 3, 4]);
    }
}
