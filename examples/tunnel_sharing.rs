//! SproutTunnel flow isolation (§4.3 / §5.7): a TCP Cubic bulk download
//! and a Skype-model call share one cellular downlink — first directly
//! (commingled in the carrier queue), then through a SproutTunnel.
//!
//! ```text
//! cargo run --release --example tunnel_sharing
//! ```

use sprout_baselines::{
    AppProfile, Cubic, TcpReceiver, TcpSender, VideoAppReceiver, VideoAppSender,
};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{FlowId, MuxEndpoint, PathConfig, Simulation};
use sprout_trace::{Duration, NetProfile, Timestamp};
use sprout_tunnel::{TunnelEndpoint, TunnelHost};

const CUBIC: FlowId = FlowId(1);
const SKYPE: FlowId = FlowId(2);

fn main() {
    let secs = 120;
    let warm = 20;
    let down = NetProfile::VerizonLteDown.generate(Duration::from_secs(secs), 17);
    let up = NetProfile::VerizonLteUp.generate(Duration::from_secs(secs), 18);
    println!(
        "Verizon LTE downlink ({:.0} kbps mean) shared by a Cubic download and a Skype call\n",
        down.average_rate_kbps()
    );

    // --- direct: one queue, both flows ---
    let mut a = MuxEndpoint::new();
    a.add(CUBIC, Box::new(TcpSender::new(Box::new(Cubic::new()))));
    a.add(SKYPE, Box::new(VideoAppSender::new(AppProfile::skype())));
    let mut b = MuxEndpoint::new();
    b.add(CUBIC, Box::new(TcpReceiver::new()));
    b.add(SKYPE, Box::new(VideoAppReceiver::new()));
    let mut sim = Simulation::new(
        a,
        b,
        PathConfig::standard(down.clone()),
        PathConfig::standard(up.clone()),
    );
    sim.run_until(Timestamp::from_secs(secs));
    let m = sim.ab_metrics();
    let (from, to) = (Timestamp::from_secs(warm), Timestamp::from_secs(secs));
    let direct = (
        m.flow_throughput_kbps(CUBIC, from, to),
        m.flow_throughput_kbps(SKYPE, from, to),
        m.flow_p95_delay(SKYPE, from, to),
    );

    // --- tunneled: per-flow queues inside one Sprout session ---
    println!("building Sprout forecast tables...");
    let cfg = SproutConfig::paper();
    let mut host_a = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(cfg.clone())));
    host_a.add_client(CUBIC, Box::new(TcpSender::new(Box::new(Cubic::new()))));
    host_a.add_client(SKYPE, Box::new(VideoAppSender::new(AppProfile::skype())));
    let mut host_b = TunnelHost::new(TunnelEndpoint::new(SproutEndpoint::new(cfg)));
    host_b.add_client(CUBIC, Box::new(TcpReceiver::new()));
    host_b.add_client(SKYPE, Box::new(VideoAppReceiver::new()));
    let mut sim = Simulation::new(
        host_a,
        host_b,
        PathConfig::standard(down),
        PathConfig::standard(up),
    );
    sim.run_until(Timestamp::from_secs(secs));
    let m = sim.b.deliveries();
    let tunneled = (
        m.flow_throughput_kbps(CUBIC, from, to),
        m.flow_throughput_kbps(SKYPE, from, to),
        m.flow_p95_delay(SKYPE, from, to),
    );

    let fmt_delay = |d: Option<sprout_trace::Duration>| {
        d.map(|d| format!("{:.2}s", d.as_secs_f64()))
            .unwrap_or_else(|| "-".into())
    };
    println!("\n                      direct      via SproutTunnel   (paper §5.7)");
    println!(
        "  Cubic throughput  {:>8.0} kbps {:>8.0} kbps        (8336 → 3776)",
        direct.0, tunneled.0
    );
    println!(
        "  Skype throughput  {:>8.0} kbps {:>8.0} kbps        (78 → 490)",
        direct.1, tunneled.1
    );
    println!(
        "  Skype 95% delay   {:>13} {:>13}        (6.0 s → 0.17 s)",
        fmt_delay(direct.2),
        fmt_delay(tunneled.2)
    );
    println!("\nInside the tunnel each flow has its own queue and the total");
    println!("backlog is capped by the forecast, so the bulk download can no");
    println!("longer bury the interactive call (drops land on its own queue).");
}
