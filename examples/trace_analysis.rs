//! Trace tooling: synthesize a cellular trace (or load a real Saturator
//! capture), print its §5.1-style summary and the Figure 2 interarrival
//! statistics, then round-trip it through the Saturator reproduction to
//! show the capture methodology works.
//!
//! ```text
//! cargo run --release --example trace_analysis [path/to/capture.trace]
//! ```

use sprout_baselines::{SaturatorReceiver, SaturatorSender};
use sprout_sim::{PathConfig, Simulation};
use sprout_trace::{
    load_trace, outage_stats, summarize, Duration, InterarrivalHistogram, NetProfile, Timestamp,
    Trace,
};

fn main() {
    // Load a real capture if given; otherwise synthesize a Verizon LTE
    // downlink from the paper's stochastic model.
    let trace: Trace = match std::env::args().nth(1) {
        Some(path) => {
            println!("loading {path}");
            load_trace(&path).expect("readable Saturator trace")
        }
        None => {
            println!("synthesizing 300 s of Verizon LTE downlink (seed 1)");
            NetProfile::VerizonLteDown.generate(Duration::from_secs(300), 1)
        }
    };

    let s = summarize(&trace);
    println!("\n== summary ==");
    println!("duration:        {}", s.duration);
    println!("opportunities:   {} MTU-sized deliveries", s.opportunities);
    println!("mean capacity:   {:.0} kbps", s.mean_kbps);
    println!("peak second:     {:.0} kbps", s.peak_1s_kbps);
    println!("worst second:    {:.0} kbps", s.min_1s_kbps);
    println!(
        "outages >1s:     {} (longest {}, total {})",
        s.outages_over_1s.count, s.outages_over_1s.longest, s.outages_over_1s.total_time
    );
    let o3 = outage_stats(&trace, Duration::from_secs(3));
    println!("outages >3s:     {}", o3.count);

    println!("\n== interarrival distribution (Figure 2) ==");
    let hist = InterarrivalHistogram::from_trace(&trace, 10, 10_000.0);
    println!(
        "{:.3}% of interarrivals within 20 ms (paper: 99.99%)",
        hist.fraction_within_ms(20.0) * 100.0
    );
    if let Some(slope) = hist.tail_power_law_slope(20.0, 5_000.0) {
        println!("tail power-law slope t^{slope:.2} (paper: t^-3.27)");
    }
    println!("log-spaced histogram (non-empty bins):");
    for (lo, hi, pct) in hist.rows().filter(|r| r.2 > 0.0).take(18) {
        println!("  [{lo:>7.1} ms, {hi:>7.1} ms)  {pct:>8.4}%");
    }

    // §7 future work: fit the paper's stochastic model to this trace.
    println!("\n== fitted link model (§7: models trained on empirical variations) ==");
    match sprout_trace::fit_link_model(&trace, &sprout_trace::FitConfig::default()) {
        Some(fit) => {
            println!(
                "mean rate:     {:.0} pps ({:.0} kbps)",
                fit.params.mean_rate_pps,
                fit.params.mean_rate_pps * 12.0
            );
            println!(
                "sigma:         {:.0} pps/sqrt(s) (paper freezes 200)",
                fit.params.sigma
            );
            println!(
                "outage escape: {:.2} /s (paper freezes 1.0)",
                fit.params.outage_escape_rate
            );
            println!(
                "outage entry:  {:.3} /s over {} outages ({:.1}% of the trace)",
                fit.params.outage_entry_rate,
                fit.outages,
                fit.outage_fraction * 100.0
            );
        }
        None => println!("trace too short to fit"),
    }

    // Round-trip through the Saturator (§4.1): saturate an emulated link
    // that replays this trace and re-capture its delivery schedule.
    println!("\n== Saturator round-trip (§4.1) ==");
    let secs = trace.duration().as_secs_f64().min(120.0) as u64;
    let feedback = Trace::from_millis(0..secs * 1_000); // ideal feedback path
    let mut sim = Simulation::new(
        SaturatorSender::new(),
        SaturatorReceiver::new(),
        PathConfig::standard(trace.clone()),
        PathConfig::standard(feedback),
    );
    sim.run_until(Timestamp::from_secs(secs));
    let captured = sim.b.captured_trace();
    let window =
        |tr: &Trace| tr.opportunities_between(Timestamp::from_secs(10), Timestamp::from_secs(secs));
    let truth = window(&trace);
    let got = window(&captured);
    println!(
        "ground truth {truth} opportunities in [10s,{secs}s]; Saturator captured {got} \
         ({:.1}% — the standing queue keeps the link busy, §4.1)",
        100.0 * got as f64 / truth.max(1) as f64
    );
    if let Some(rtt) = sim.a.last_rtt() {
        println!("Saturator standing RTT at end: {rtt} (target 750–3000 ms)");
    }
}
