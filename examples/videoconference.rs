//! The paper's motivating scenario (§1): a videoconference over a
//! cellular path. Compares the Skype model with the same video source
//! carried over Sprout, side by side on identical link conditions —
//! Figure 1 in miniature, printed as a per-second storyboard.
//!
//! ```text
//! cargo run --release --example videoconference
//! ```

use sprout_baselines::{AppProfile, VideoAppReceiver, VideoAppSender};
use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{direction_stats, Endpoint, PathConfig, Simulation};
use sprout_trace::{Duration, NetProfile, Timestamp, Trace};

fn run_one(
    label: &str,
    a: Box<dyn Endpoint>,
    b: Box<dyn Endpoint>,
    down: Trace,
    up: Trace,
    secs: u64,
) {
    let mut sim = Simulation::new(a, b, PathConfig::standard(down), PathConfig::standard(up));
    sim.run_until(Timestamp::from_secs(secs));
    println!("\n{label}: per-5s throughput (kbps) and worst arrival delay (ms)");
    let m = sim.ab_metrics();
    let bin = Duration::from_secs(5);
    let series = m.throughput_series_kbps(bin, Timestamp::from_secs(5), Timestamp::from_secs(secs));
    // Worst delay per bin.
    let mut worst = vec![0u64; series.len()];
    for (at, d) in m.delay_series() {
        if at < Timestamp::from_secs(5) {
            continue;
        }
        let idx = ((at.as_micros() - 5_000_000) / bin.as_micros()) as usize;
        if idx < worst.len() {
            worst[idx] = worst[idx].max(d.as_millis());
        }
    }
    print!("  tput: ");
    for (_, kbps) in &series {
        print!("{:>6.0}", kbps);
    }
    print!("\n  delay:");
    for w in &worst {
        print!("{:>6}", w);
    }
    println!();
    let stats = direction_stats(
        sim.ab_path(),
        Timestamp::from_secs(5),
        Timestamp::from_secs(secs),
    );
    println!(
        "  => {:.0} kbps, 95% end-to-end delay {}, self-inflicted {}",
        stats.throughput_kbps,
        stats.p95_delay.map(|d| d.to_string()).unwrap_or_default(),
        stats
            .self_inflicted
            .map(|d| d.to_string())
            .unwrap_or_default(),
    );
}

fn main() {
    let secs = 60;
    let down = NetProfile::VerizonLteDown.generate(Duration::from_secs(secs), 7);
    let up = NetProfile::VerizonLteUp.generate(Duration::from_secs(secs), 8);
    println!(
        "Verizon LTE downlink, {:.0} kbps mean capacity",
        down.average_rate_kbps()
    );

    // A Skype-like app: open-loop rate control, slow reaction (§5.2).
    run_one(
        "Skype model",
        Box::new(VideoAppSender::new(AppProfile::skype())),
        Box::new(VideoAppReceiver::new()),
        down.clone(),
        up.clone(),
        secs,
    );

    // The same conference over Sprout: the video source fills whatever
    // window the forecast allows (the paper couples the encoder to the
    // transport; a saturating source shows the transport's envelope).
    println!("\nbuilding Sprout forecast tables...");
    let cfg = SproutConfig::paper();
    let mut sprout_sender = SproutEndpoint::new(cfg.clone());
    sprout_sender.set_saturating();
    run_one(
        "Sprout",
        Box::new(sprout_sender),
        Box::new(SproutEndpoint::new(cfg)),
        down,
        up,
        secs,
    );

    println!("\nThe Skype model overshoots rate drops and builds multi-second");
    println!("queues; Sprout keeps the worst-case delay near its 100 ms target");
    println!("while tracking the link's capacity (the paper's Figure 1).");
}
