//! Quickstart: run Sprout over an emulated cellular link and print what
//! the paper's evaluation would report for it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_sim::{direction_stats, PathConfig, Simulation};
use sprout_trace::{Duration, NetProfile, Timestamp};

fn main() {
    // 1. A cellular link. Synthetic here (the paper's doubly-stochastic
    //    model, §3.1); `sprout_trace::load_trace` reads real Saturator
    //    captures in the same format.
    let secs = 60;
    let downlink = NetProfile::VerizonLteDown.generate(Duration::from_secs(secs), 42);
    let uplink = NetProfile::VerizonLteUp.generate(Duration::from_secs(secs), 43);
    println!(
        "link: {} ({:.0} kbps mean capacity over {}s)",
        NetProfile::VerizonLteDown.name(),
        downlink.average_rate_kbps(),
        secs
    );

    // 2. Two Sprout endpoints. The paper's frozen configuration: 20 ms
    //    ticks, sigma = 200, 95%-confidence forecasts. The first
    //    construction builds the forecast tables (a few seconds).
    println!("building forecast tables...");
    let cfg = SproutConfig::paper();
    let mut sender = SproutEndpoint::new(cfg.clone());
    sender.set_saturating(); // bulk source, like the paper's evaluation
    let receiver = SproutEndpoint::new(cfg);

    // 3. Bridge them with the Cellsim emulator (20 ms propagation each
    //    way, per-byte delivery accounting) and run in virtual time.
    let mut sim = Simulation::new(
        sender,
        receiver,
        PathConfig::standard(downlink),
        PathConfig::standard(uplink),
    );
    sim.run_until(Timestamp::from_secs(secs));

    // 4. The paper's metrics (§5.1): throughput, 95% end-to-end delay,
    //    self-inflicted delay vs the omniscient floor, utilization.
    let stats = direction_stats(
        sim.ab_path(),
        Timestamp::from_secs(10), // skip startup
        Timestamp::from_secs(secs),
    );
    println!("throughput:           {:>8.0} kbps", stats.throughput_kbps);
    println!(
        "95% end-to-end delay: {:>8} (omniscient floor {})",
        stats.p95_delay.map(|d| d.to_string()).unwrap_or_default(),
        stats
            .omniscient_p95
            .map(|d| d.to_string())
            .unwrap_or_default(),
    );
    println!(
        "self-inflicted delay: {:>8}",
        stats
            .self_inflicted
            .map(|d| d.to_string())
            .unwrap_or_default()
    );
    println!("link utilization:     {:>7.0}%", stats.utilization * 100.0);
    println!("\nSprout's target: ≤100 ms queueing with 95% probability — the");
    println!("self-inflicted delay above is what the forecast bought you.");
}
