//! The same sans-IO Sprout endpoints on real UDP sockets over loopback:
//! a 3-second live session between two threads, with forecasts flowing
//! back and data flowing forward in wall-clock time.
//!
//! ```text
//! cargo run --release --example live_udp
//! ```

use sprout_core::{SproutConfig, SproutEndpoint};
use sprout_net::UdpDriver;
use sprout_trace::Duration;

fn main() -> std::io::Result<()> {
    println!("building forecast tables (shared by both endpoints)...");
    let cfg = SproutConfig::paper();
    let mut client = SproutEndpoint::new(cfg.clone());
    client.set_saturating();
    let server = SproutEndpoint::new(cfg);

    let mut server_drv = UdpDriver::bind(server, "127.0.0.1:0", None)?;
    let server_addr = server_drv.local_addr()?;
    let mut client_drv = UdpDriver::bind(client, "127.0.0.1:0", Some(server_addr))?;
    println!("client {} → server {server_addr}", client_drv.local_addr()?);

    let run_for = Duration::from_secs(3);
    let server_thread = std::thread::spawn(move || server_drv.run_for(run_for).map(|_| server_drv));
    client_drv.run_for(run_for)?;
    let server_drv = server_thread.join().expect("server thread")?;

    let c = client_drv.stats();
    let s = server_drv.stats();
    println!(
        "\nclient sent {} datagrams ({} KB)",
        c.sent,
        c.bytes_sent / 1024
    );
    println!(
        "server received {} datagrams ({} KB) and sent {} feedback packets",
        s.received,
        s.bytes_received / 1024,
        s.sent
    );
    println!(
        "server app-level goodput ≈ {:.1} Mbit/s over loopback",
        server_drv.endpoint().stats().app_bytes_received as f64 * 8.0 / 3.0 / 1e6
    );
    println!(
        "client window at end: {} bytes (driven by the server's live forecasts)",
        {
            let now = client_drv.now();
            client_drv.endpoint_mut().window_bytes(now)
        }
    );
    println!("\nNote: loopback has no cellular dynamics — this example shows the");
    println!("sans-IO state machines running unmodified over real sockets.");
    Ok(())
}
