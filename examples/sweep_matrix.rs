//! The scenario-matrix sweep engine: declare an experiment as a
//! cross-product, run it in parallel, and get deterministic structured
//! results.
//!
//! ```text
//! cargo run --release --example sweep_matrix
//! ```

use sprout_bench::{ScenarioMatrix, Scheme, SweepEngine};
use sprout_trace::{Duration, NetProfile};

fn main() {
    // Declare: 3 schemes × 2 links × 2 loss rates = 12 cells.
    let matrix = ScenarioMatrix::builder("demo")
        .schemes([Scheme::SproutEwma, Scheme::Cubic, Scheme::Skype])
        .links([NetProfile::VerizonLteDown, NetProfile::TmobileUmtsUp])
        .loss_rates([0.0, 0.05])
        .timing(Duration::from_secs(60), Duration::from_secs(10))
        .build();
    println!("matrix '{}': {} cells", matrix.name(), matrix.len());

    // Execute: cells fan out across worker threads; results come back in
    // matrix order, bit-identical for any thread count.
    let engine = SweepEngine::new(42);
    let t0 = std::time::Instant::now();
    let results = engine.run(&matrix);
    println!("swept in {:.1?}\n", t0.elapsed());

    for r in &results {
        let m = r.metrics.expect("scheme cells have metrics");
        println!(
            "{:40} {:>7.0} kbps  self-inflicted {:>7.0} ms  util {:>5.2}",
            r.scenario.label, m.throughput_kbps, m.self_inflicted_ms, m.utilization
        );
    }

    // Structured record: one canonical JSON document per sweep.
    let json = sprout_bench::sweep_to_json(matrix.name(), 42, &results);
    println!("\nJSON record: {} bytes (stable across runs)", json.len());
}
